// Package vvault is the cluster side of the V3 "Volume Vault": a client
// layer that composes N netv3 (v3d) backends into one logical volume.
// The paper's V3 is a cluster storage back-end — "V3 volumes can span
// multiple V3 nodes using combinations of RAID" — and this package is
// that spanning layer on the real TCP path: the address arithmetic comes
// from internal/volume (Stripe for RAID-0 throughput, Mirror for RAID-1
// availability), the parallel extent I/O from the async netv3 client
// API.
//
// Beyond the happy path it owns the cluster-level fault handling the
// mappings alone cannot express: per-backend health state driven by a
// probe loop and an error-count trip, degraded-mode routing (mirror
// reads and writes route around a dead replica; striped volumes fail
// fast), a per-replica dirty-extent log, and a background resync worker
// that replays dirty ranges onto a recovered replica before returning it
// to the read rotation. Flush fans out to every live backend and is the
// cluster-wide durability barrier.
package vvault

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/repl"
	"github.com/v3storage/v3/internal/volume"
)

// Mode selects how the logical volume spans the backends.
type Mode int

const (
	// ModeStripe interleaves the volume RAID-0 across all backends:
	// maximum throughput, no redundancy — one dead backend fails every
	// request that touches it.
	ModeStripe Mode = iota
	// ModeMirror replicates the volume RAID-1 on every backend: reads
	// rotate over live replicas, writes fan out, and a dead replica is
	// routed around and resynced when it returns.
	ModeMirror
)

func (m Mode) String() string {
	if m == ModeMirror {
		return "mirror"
	}
	return "stripe"
}

// Config tunes a Vault.
type Config struct {
	// Mode is the spanning layout (default ModeStripe).
	Mode Mode
	// Volume is the remote volume id on every backend (default 1).
	Volume uint32
	// MemberSize is the usable bytes contributed by each backend. It
	// must not exceed any backend's exported volume and, for striping,
	// must be a multiple of StripeSize. Required.
	MemberSize int64
	// StripeSize is the RAID-0 interleave unit (default 64 KB).
	StripeSize int64
	// Client configures each backend's netv3 client.
	Client netv3.ClientConfig
	// ProbeInterval is the health-probe period (default 250ms); probes
	// are zero-length reads of block 0.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe's completion wait (default 2s).
	ProbeTimeout time.Duration
	// IOTimeout bounds every data-path completion wait; a timed-out
	// backend is tripped immediately (default 15s).
	IOTimeout time.Duration
	// ErrorThreshold is the consecutive-error count that trips a backend
	// to Down (default 3). Connection loss and timeouts trip at once.
	ErrorThreshold int
	// ResyncChunk is the copy unit the resync worker reads from a live
	// replica and replays onto a recovered one (default 256 KB, capped
	// at the backends' max transfer).
	ResyncChunk int
	// LogRecords bounds the mirror's replication log: how many precise
	// write records it keeps before folding the oldest into an extent
	// summary (default 4096). A replica whose outage outlives the window
	// catches up from the folded summary instead of precise replay —
	// more bytes copied, never fewer.
	LogRecords int
	// Streams rides each backend over logical streams when the peer
	// negotiates the multiplexing feature: a foreground data stream for
	// client I/O plus (mirror mode) a background-lane resync stream, so
	// recovery replay cannot crowd live traffic out of the server's
	// foreground QoS lane. Old backends that don't negotiate the feature
	// fall back to the bare connection transparently. Health probes stay
	// on the bare connection (stream 0) either way. DefaultConfig
	// enables it.
	Streams bool
	// DataStreamCredits is the data stream's credit carve-out from the
	// connection window (default 48 — under the server's default window
	// of 64, so probes on stream 0 always have slot headroom).
	DataStreamCredits int
	// ResyncStreamCredits is the background resync stream's carve-out
	// (default 8).
	ResyncStreamCredits int
	// Metrics, when non-nil, enables cluster-level instrumentation on
	// this registry: per-backend health/dirty gauges, probe RTT
	// histogram, degraded-time and resync counters. Nil is the disabled
	// fast path.
	Metrics *obs.Registry
	// Flight, when non-nil, receives replica-level flight-recorder
	// events: per-replica sub-I/O spans harvested from traced responses
	// and backend trips (which also mark an incident, freezing a dump of
	// the ring's recent history). Nil is the disabled fast path.
	Flight *obs.Flight
	// Logger receives health transitions and resync progress; nil
	// silences them.
	Logger *log.Logger
}

// DefaultConfig returns production defaults for the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:           mode,
		Volume:         1,
		StripeSize:     64 << 10,
		Client:         netv3.DefaultClientConfig(),
		ProbeInterval:  250 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		IOTimeout:      15 * time.Second,
		ErrorThreshold: 3,
		ResyncChunk:    256 << 10,
		Streams:        true,
	}
}

// ErrDegraded reports an operation the vault cannot serve in its current
// health state: a striped extent on a dead backend, or a mirror with
// every replica down.
var ErrDegraded = errors.New("vvault: volume degraded")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("vvault: vault closed")

// Backend health states.
const (
	stateUp int32 = iota
	stateDown
	stateResync
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDown:
		return "down"
	case stateResync:
		return "resync"
	}
	return "?"
}

// backend is one v3d server behind the vault.
type backend struct {
	idx  int
	addr string

	// mu guards the client pointer and state transitions; state itself
	// is atomic so the data path reads it lock-free.
	mu     sync.Mutex
	client *netv3.Client
	state  atomic.Int32

	// data and rsync are the backend's logical streams when the peer
	// negotiated multiplexing: data carries foreground client I/O,
	// rsync rides the server's background QoS lane for resync replay.
	// Nil means the bare connection (feature absent or Streams off).
	// Guarded by mu alongside client; cleared whenever the client is
	// replaced or closed so a stale stream can never outlive its
	// connection.
	data  *netv3.Stream
	rsync *netv3.Stream

	// consec counts consecutive data-path errors, probeConsec consecutive
	// probe errors. They are separate on purpose: a passing probe says
	// nothing about the data path, so it must not be able to keep resetting
	// the counter while sporadic I/O failures accumulate underneath it.
	consec      atomic.Int32
	probeConsec atomic.Int32
	trips       atomic.Int64

	// lastProbeRTT is the most recent successful health probe's round
	// trip in nanoseconds (0 before the first success).
	lastProbeRTT atomic.Int64

	// srvSpanH folds this replica's server-reported time (queue wait +
	// service) harvested from traced responses; nil when Config.Metrics
	// is unset. It is what separates "replica 2 is slow" into the
	// network (probe RTT minus this) versus the replica's own stack.
	srvSpanH *obs.Hist

	// ioMu orders mirror writes against resync completion: a write holds
	// the read side from the moment it observes this backend's state
	// until its outcome is sequenced in the replication log (Ack/Fail),
	// and the resync worker takes the write side for its final caught-up
	// check. That makes "sequence-after-completion" safe: resync cannot
	// declare the replica clean while a write that will append a record
	// is still in flight.
	ioMu sync.RWMutex

	// cur is this replica's consumer cursor into the vault's replication
	// log (mirror mode only; nil for stripe). The dirty and unflushed
	// extent views the vault used to maintain by hand are projections of
	// its (cursor, watermark, debt) state.
	cur *repl.Consumer
}

func (b *backend) getClient() *netv3.Client {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.client
}

// dataIO returns the surface foreground requests ride: the data stream
// when one is attached, else the bare client. Nil when the backend has
// no client at all.
func (b *backend) dataIO() netv3.IO {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.data != nil {
		return b.data
	}
	if b.client == nil {
		return nil
	}
	return b.client
}

// resyncIO is dataIO for the recovery path: the background-lane resync
// stream when attached, else the bare client.
func (b *backend) resyncIO() netv3.IO {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rsync != nil {
		return b.rsync
	}
	if b.client == nil {
		return nil
	}
	return b.client
}

// attachStreams opens the backend's logical streams on a fresh client.
// Best-effort: any refusal (old peer, stream cap, overload) leaves the
// backend on the bare connection, which is always correct — streams are
// a QoS upgrade, not a requirement.
func (v *Vault) attachStreams(b *backend, c *netv3.Client) {
	if !v.cfg.Streams || !c.StreamsSupported() {
		return
	}
	data, err := c.OpenStream(netv3.StreamConfig{Credits: v.cfg.DataStreamCredits})
	if err != nil {
		v.logf("vvault: backend %s: data stream refused (%v); riding bare connection", b.addr, err)
		return
	}
	var rs *netv3.Stream
	if v.mirror != nil {
		rs, err = c.OpenStream(netv3.StreamConfig{
			Credits: v.cfg.ResyncStreamCredits, Background: true,
		})
		if err != nil {
			v.logf("vvault: backend %s: resync stream refused (%v); resync will ride the data path", b.addr, err)
		}
	}
	b.mu.Lock()
	if b.client == c {
		b.data, b.rsync = data, rs
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	// The client was swapped (trip + recover) while the streams were
	// negotiating; they belong to a dead connection.
	_ = data.Close()
	if rs != nil {
		_ = rs.Close()
	}
}

// Vault is the cluster client: one logical volume over N backends. It is
// safe for concurrent use.
type Vault struct {
	cfg      Config
	layout   volume.Layout
	mirror   *volume.Mirror // non-nil in mirror mode
	backends []*backend
	size     int64
	// maxio is the per-request transfer cap across backends. Atomic because
	// tryRecover may shrink it when a backend that was unreachable at Open
	// (so never contributed its MaxTransfer) comes back with a smaller cap.
	maxio atomic.Int64

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// rlog is the mirror's sequenced replication log: every acknowledged
	// write appends one record, each replica is a consumer cursor over
	// it, and outside subscribers tap it via Subscribe. Nil in stripe
	// mode.
	rlog *repl.Log

	degradedReads  atomic.Int64
	degradedWrites atomic.Int64
	resyncs        atomic.Int64
	resyncedBytes  atomic.Int64
	// resyncReplayed is gross replay traffic (every byte written by the
	// resync worker, re-runs included); resyncedBytes is net — bytes
	// brought back in sync, counted once per outage.
	resyncReplayed atomic.Int64

	// probeRTT is the health-probe round-trip histogram; nil when
	// Config.Metrics is unset.
	probeRTT *obs.Hist

	// flight is Config.Flight; nil no-ops every record (the obs.Flight
	// methods are nil-safe, so the data path never branches on it).
	flight *obs.Flight

	// Degraded-time accounting (mirror mode): degSince is non-zero while
	// at least one replica is masked out of rotation, degAccum the closed
	// intervals already summed. Guarded by degMu; maintained by
	// noteMaskChange after every mask transition.
	degMu    sync.Mutex
	degSince time.Time
	degAccum time.Duration
}

// noteMaskChange re-derives the degraded interval state from the mirror
// mask; call after any SetMask.
func (v *Vault) noteMaskChange() {
	if v.mirror == nil {
		return
	}
	deg := v.mirror.MaskedCount() > 0
	v.degMu.Lock()
	switch {
	case deg && v.degSince.IsZero():
		v.degSince = time.Now()
	case !deg && !v.degSince.IsZero():
		v.degAccum += time.Since(v.degSince)
		v.degSince = time.Time{}
	}
	v.degMu.Unlock()
}

// degradedTime is the cumulative wall time spent with at least one
// replica out of rotation, including the currently open interval.
func (v *Vault) degradedTime() time.Duration {
	v.degMu.Lock()
	d := v.degAccum
	if !v.degSince.IsZero() {
		d += time.Since(v.degSince)
	}
	v.degMu.Unlock()
	return d
}

// Open dials every backend and assembles the logical volume. In stripe
// mode every backend must answer; in mirror mode the vault comes up as
// long as one replica does — unreachable replicas start Down with the
// whole volume dirty, so the first successful probe triggers a full
// resync.
func Open(addrs []string, cfg Config) (*Vault, error) {
	if len(addrs) == 0 {
		return nil, errors.New("vvault: need at least one backend address")
	}
	if cfg.Volume == 0 {
		cfg.Volume = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 64 << 10
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 15 * time.Second
	}
	if cfg.ErrorThreshold <= 0 {
		cfg.ErrorThreshold = 3
	}
	if cfg.ResyncChunk <= 0 {
		cfg.ResyncChunk = 256 << 10
	}
	if cfg.DataStreamCredits <= 0 {
		cfg.DataStreamCredits = 48
	}
	if cfg.ResyncStreamCredits <= 0 {
		cfg.ResyncStreamCredits = 8
	}
	if cfg.MemberSize <= 0 {
		return nil, errors.New("vvault: MemberSize must be positive")
	}
	if cfg.Mode == ModeMirror && len(addrs) < 2 {
		return nil, errors.New("vvault: mirror mode needs at least two backends")
	}

	v := &Vault{cfg: cfg, done: make(chan struct{}), flight: cfg.Flight}
	netv3.RegisterFlightKinds(v.flight)
	v.maxio.Store(1 << 20)
	switch cfg.Mode {
	case ModeStripe:
		if cfg.MemberSize%cfg.StripeSize != 0 {
			return nil, fmt.Errorf("vvault: MemberSize %d not a multiple of StripeSize %d",
				cfg.MemberSize, cfg.StripeSize)
		}
		st, err := volume.NewStripe(len(addrs), cfg.StripeSize, cfg.MemberSize)
		if err != nil {
			return nil, err
		}
		v.layout = st
	case ModeMirror:
		inner, err := volume.NewConcat(cfg.MemberSize)
		if err != nil {
			return nil, err
		}
		m, err := volume.NewMirror(inner, len(addrs))
		if err != nil {
			return nil, err
		}
		v.layout, v.mirror = m, m
	default:
		return nil, fmt.Errorf("vvault: unknown mode %d", cfg.Mode)
	}
	v.size = cfg.MemberSize
	if cfg.Mode == ModeStripe {
		v.size = cfg.MemberSize * int64(len(addrs))
	}
	if cfg.Mode == ModeMirror {
		v.rlog = repl.New(v.size, repl.Config{MaxRecords: cfg.LogRecords})
	}

	live := 0
	for i, addr := range addrs {
		b := &backend{idx: i, addr: addr}
		if v.rlog != nil {
			b.cur = v.rlog.Consumer(fmt.Sprintf("replica-%d", i))
		}
		c, err := netv3.Dial(addr, cfg.Client)
		switch {
		case err == nil:
			b.client = c
			b.state.Store(stateUp)
			v.clampMaxIO(c.MaxTransfer())
			v.attachStreams(b, c)
			live++
		case cfg.Mode == ModeMirror:
			// Come up degraded: the replica's content is unknown, so the
			// whole volume is seeded as debt and recovery implies a full
			// resync.
			b.state.Store(stateDown)
			b.cur.Reset()
			b.cur.SeedDebt(0, v.size)
			v.mirror.SetMask(i, true)
			v.logf("vvault: backend %s unreachable at open (%v); starting degraded", addr, err)
		default:
			for _, ob := range v.backends {
				if c := ob.getClient(); c != nil {
					c.Close()
				}
			}
			return nil, fmt.Errorf("vvault: dial backend %s: %w", addr, err)
		}
		v.backends = append(v.backends, b)
	}
	if live == 0 {
		return nil, fmt.Errorf("%w: no backend reachable", ErrDegraded)
	}
	if mio := v.maxIO(); v.cfg.ResyncChunk > mio {
		v.cfg.ResyncChunk = mio
	}
	v.noteMaskChange() // a replica may have started masked
	v.registerMetrics(cfg.Metrics)

	// Seed each live backend's probe RTT synchronously so Status reports
	// it immediately after Open — one-shot consumers (v3cli status) exit
	// before the first ticker-driven probe would land.
	for _, b := range v.backends {
		if b.state.Load() == stateUp {
			v.probeOnce(b)
		}
	}
	for _, b := range v.backends {
		v.wg.Add(1)
		go v.probeLoop(b)
	}
	return v, nil
}

// registerMetrics exports the vault's existing health state and counters
// as gauge funcs plus the probe-RTT histogram — no double bookkeeping;
// no-op when r is nil.
func (v *Vault) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	v.probeRTT = r.Hist("vvault_probe_rtt_ns")
	r.GaugeFunc("vvault_degraded_reads_total", v.degradedReads.Load)
	r.GaugeFunc("vvault_degraded_writes_total", v.degradedWrites.Load)
	r.GaugeFunc("vvault_resyncs_total", v.resyncs.Load)
	r.GaugeFunc("vvault_resynced_bytes_total", v.resyncedBytes.Load)
	r.GaugeFunc("vvault_resync_replayed_bytes_total", v.resyncReplayed.Load)
	r.GaugeFunc("vvault_degraded_ms", func() int64 {
		return v.degradedTime().Milliseconds()
	})
	if v.rlog != nil {
		r.GaugeFunc("vvault_repl_log_head", func() int64 {
			return int64(v.rlog.Stats().Head)
		})
		r.GaugeFunc("vvault_repl_log_depth", func() int64 {
			return int64(v.rlog.Stats().Records)
		})
		r.GaugeFunc("vvault_repl_log_folded_ranges", func() int64 {
			return int64(v.rlog.Stats().Folded)
		})
		r.GaugeFunc("vvault_repl_fallbacks_total", func() int64 {
			return v.rlog.Stats().Fallbacks
		})
		r.GaugeSet("vvault_repl_feed_cursor", func() map[string]int64 {
			out := make(map[string]int64)
			for name, cur := range v.rlog.FeedCursors() {
				out[fmt.Sprintf("{feed=%q}", name)] = int64(cur)
			}
			return out
		})
	}
	for _, b := range v.backends {
		b := b
		lbl := fmt.Sprintf(`{backend="%d",addr=%q}`, b.idx, b.addr)
		r.GaugeFunc("vvault_backend_state"+lbl, func() int64 {
			return int64(b.state.Load())
		})
		r.GaugeFunc("vvault_backend_trips_total"+lbl, b.trips.Load)
		r.GaugeFunc("vvault_backend_probe_rtt_ns"+lbl, b.lastProbeRTT.Load)
		b.srvSpanH = r.Hist("vvault_replica_srv_ns" + lbl)
		if b.cur != nil {
			r.GaugeFunc("vvault_backend_dirty_ranges"+lbl, func() int64 {
				return int64(b.cur.Stats().DirtyRanges)
			})
			r.GaugeFunc("vvault_backend_dirty_bytes"+lbl, func() int64 {
				return b.cur.Stats().DirtyBytes
			})
			r.GaugeFunc("vvault_backend_log_cursor"+lbl, func() int64 {
				return int64(b.cur.Stats().Pos)
			})
			r.GaugeFunc("vvault_backend_watermark_lag"+lbl, func() int64 {
				// Records acked but not yet covered by a flush barrier:
				// what a crash right now would cost this replica.
				return int64(v.rlog.Stats().Head - b.cur.Stats().Durable)
			})
			r.GaugeFunc("vvault_backend_unflushed_bytes"+lbl, func() int64 {
				return b.cur.Stats().UnflushedBytes
			})
		}
	}
}

// Size returns the logical volume size in bytes.
func (v *Vault) Size() int64 { return v.size }

// Mode returns the spanning mode.
func (v *Vault) Mode() Mode { return v.cfg.Mode }

// Close stops the health and resync workers and closes every backend
// client.
func (v *Vault) Close() error {
	if !v.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(v.done)
	v.wg.Wait()
	for _, b := range v.backends {
		if c := b.getClient(); c != nil {
			c.Close()
		}
	}
	return nil
}

func (v *Vault) logf(format string, args ...any) {
	if v.cfg.Logger != nil {
		v.cfg.Logger.Printf(format, args...)
	}
}

func (v *Vault) maxIO() int { return int(v.maxio.Load()) }

// clampMaxIO shrinks the cluster transfer cap to mt so requests chunked
// at the cap are never rejected by the smallest backend, including one
// that joined (or rejoined) after Open.
func (v *Vault) clampMaxIO(mt int) {
	if mt <= 0 {
		return
	}
	for {
		cur := v.maxio.Load()
		if int64(mt) >= cur || v.maxio.CompareAndSwap(cur, int64(mt)) {
			return
		}
	}
}

// Read fills buf from the logical volume at off.
func (v *Vault) Read(off int64, buf []byte) error {
	if v.closed.Load() {
		return ErrClosed
	}
	if len(buf) == 0 {
		_, err := v.layout.MapRead(off, 0)
		return err
	}
	if v.mirror != nil {
		return v.readMirror(off, buf)
	}
	return v.readStripe(off, buf)
}

// Write sends data to the logical volume at off. In mirror mode the
// write succeeds when at least one live replica accepted it; replicas it
// could not reach have the extent recorded in their dirty log for
// resync.
func (v *Vault) Write(off int64, data []byte) error {
	if v.closed.Load() {
		return ErrClosed
	}
	if len(data) == 0 {
		_, err := v.layout.MapWrite(off, 0)
		return err
	}
	if v.mirror != nil {
		return v.writeMirror(off, data)
	}
	return v.writeStripe(off, data)
}

// Flush is the cluster-wide durability barrier: it fans out the netv3
// Flush to every live backend and succeeds only when all of them do.
// Each replica's barrier is snapshotted before the flush is issued, so
// a write acknowledged while the flush is in flight — which it may not
// cover — stays above the watermark for the next barrier. A replica
// that fails its flush is tripped; the trip rolls its cursor back to
// the watermark, which is exactly "everything the barrier should have
// covered becomes replay debt". In mirror mode, replicas that are out
// of service are routine (the log carries their debt), but a barrier
// that reaches no live replica at all guaranteed nothing and returns
// ErrDegraded. An Up replica with no client cannot serve the barrier
// either: it is tripped and counts as a failure, not silently skipped.
func (v *Vault) Flush() error {
	if v.closed.Load() {
		return ErrClosed
	}
	type inflight struct {
		b   *backend
		h   *netv3.Pending
		bar repl.Barrier
	}
	var issued []inflight
	var firstErr error
	for _, b := range v.backends {
		if b.state.Load() != stateUp {
			if v.mirror == nil {
				firstErr = fmt.Errorf("%w: backend %s is %s", ErrDegraded, b.addr, stateName(b.state.Load()))
			}
			continue
		}
		var bar repl.Barrier
		if b.cur != nil {
			bar = b.cur.BarrierBegin()
		}
		c := b.dataIO()
		if c == nil {
			err := errors.New("no client")
			v.flushFailed(b, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("vvault: flush backend %s: %w", b.addr, err)
			}
			continue
		}
		h, err := c.FlushAsync(v.cfg.Volume)
		if err != nil {
			v.flushFailed(b, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("vvault: flush backend %s: %w", b.addr, err)
			}
			continue
		}
		issued = append(issued, inflight{b, h, bar})
	}
	deadline := time.Now().Add(v.cfg.IOTimeout)
	completed := 0
	for _, f := range issued {
		if err := waitUntil(f.h, deadline); err != nil {
			v.flushFailed(f.b, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("vvault: flush backend %s: %w", f.b.addr, err)
			}
			continue
		}
		if f.b.cur != nil {
			f.b.cur.BarrierCommit(f.bar)
		}
		completed++
	}
	if v.mirror != nil && completed == 0 && firstErr == nil {
		firstErr = fmt.Errorf("%w: flush reached no live replica", ErrDegraded)
	}
	return firstErr
}

// flushFailed handles a failed durability barrier on one backend: the
// trip's cursor reset leaves everything above the watermark — the
// acked-but-unflushed writes the barrier should have covered — as
// replay debt for resync.
func (v *Vault) flushFailed(b *backend, cause error) {
	v.trip(b, fmt.Errorf("flush failed: %w", cause))
}

// readStripe reads one striped request: all covered backends must be up,
// extents are issued in parallel through the async client API.
func (v *Vault) readStripe(off int64, buf []byte) error {
	ext, err := v.layout.MapRead(off, len(buf))
	if err != nil {
		return err
	}
	for _, e := range ext {
		if st := v.backends[e.Disk].state.Load(); st != stateUp {
			return fmt.Errorf("%w: striped read [%d,+%d) needs backend %s, which is %s",
				ErrDegraded, off, len(buf), v.backends[e.Disk].addr, stateName(st))
		}
	}
	handles, berrs, err := v.issueExtents(ext, buf, false)
	if err2 := v.waitExtents(handles, berrs); err == nil {
		err = err2
	}
	return err
}

// writeStripe mirrors readStripe for the write direction.
func (v *Vault) writeStripe(off int64, data []byte) error {
	ext, err := v.layout.MapWrite(off, len(data))
	if err != nil {
		return err
	}
	for _, e := range ext {
		if st := v.backends[e.Disk].state.Load(); st != stateUp {
			return fmt.Errorf("%w: striped write [%d,+%d) needs backend %s, which is %s",
				ErrDegraded, off, len(data), v.backends[e.Disk].addr, stateName(st))
		}
	}
	handles, berrs, err := v.issueExtents(ext, data, true)
	if err2 := v.waitExtents(handles, berrs); err == nil {
		err = err2
	}
	return err
}

// extentIO is one in-flight extent chunk.
type extentIO struct {
	b *backend
	h *netv3.Pending
}

// issueExtents submits every extent asynchronously, slicing buf in
// mapping order (extents tile the request) and chunking each extent to
// the transfer cap. It returns the in-flight handles plus the first
// submission error; handles already issued must still be waited.
func (v *Vault) issueExtents(ext []volume.Extent, buf []byte, write bool) ([]extentIO, map[*backend]error, error) {
	handles := make([]extentIO, 0, len(ext))
	berrs := make(map[*backend]error)
	maxio := v.maxIO()
	cur := 0
	for _, e := range ext {
		b := v.backends[e.Disk]
		part := buf[cur : cur+e.Length]
		cur += e.Length
		c := b.dataIO()
		if c == nil {
			err := fmt.Errorf("vvault: backend %s has no client: %w", b.addr, ErrDegraded)
			berrs[b] = err
			return handles, berrs, err
		}
		memberOff := e.Offset
		for len(part) > 0 {
			n := len(part)
			if n > maxio {
				n = maxio
			}
			var h *netv3.Pending
			var err error
			if write {
				h, err = c.WriteAsync(v.cfg.Volume, memberOff, part[:n])
			} else {
				h, err = c.ReadAsync(v.cfg.Volume, memberOff, part[:n])
			}
			if err != nil {
				v.recordError(b, err)
				berrs[b] = err
				return handles, berrs, fmt.Errorf("vvault: backend %s: %w", b.addr, err)
			}
			handles = append(handles, extentIO{b, h})
			part = part[n:]
			memberOff += int64(n)
		}
	}
	return handles, berrs, nil
}

// waitExtents waits out every handle against the I/O deadline, recording
// per-backend failures (and tripping on timeout or connection loss).
// berrs accumulates the first error per backend for callers that need
// per-replica outcomes.
func (v *Vault) waitExtents(handles []extentIO, berrs map[*backend]error) error {
	deadline := time.Now().Add(v.cfg.IOTimeout)
	var firstErr error
	for _, io := range handles {
		err := waitUntil(io.h, deadline)
		if err != nil {
			v.recordError(io.b, err)
			if berrs[io.b] == nil {
				berrs[io.b] = err
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("vvault: backend %s: %w", io.b.addr, err)
			}
			continue
		}
		v.recordSuccess(io.b)
		// A traced response carries the replica's server-side span block;
		// fold queue+service into the per-backend histogram and drop a
		// flight event so a dump shows which replica each fan-out leg of
		// a slow request spent its time on. Pre-trace replicas leave the
		// block zero — skip rather than pollute the histogram with zeros.
		if io.h.Traced() {
			sp := io.h.ServerSpan()
			if ns := uint64(sp.SrvQueueNS) + uint64(sp.SrvServiceNS); ns != 0 {
				io.b.srvSpanH.Observe(int64(ns))
				v.flight.Record(netv3.FlightReplicaIO, 0, uint64(io.b.idx), ns)
			}
		}
	}
	return firstErr
}

// waitUntil bounds h's completion by an absolute deadline.
func waitUntil(h *netv3.Pending, deadline time.Time) error {
	d := time.Until(deadline)
	if d <= 0 {
		d = time.Millisecond
	}
	return h.WaitTimeout(d)
}

// readMirror serves a read from one live replica, retrying the survivors
// when the chosen replica fails mid-read.
func (v *Vault) readMirror(off int64, buf []byte) error {
	var lastErr error
	for attempt := 0; attempt <= len(v.backends); attempt++ {
		ext, err := v.mirror.MapRead(off, len(buf))
		if err != nil {
			if errors.Is(err, volume.ErrNoReplica) {
				return fmt.Errorf("%w: every replica is down (%v)", ErrDegraded, err)
			}
			return err
		}
		handles, berrs, err := v.issueExtents(ext, buf, false)
		if err2 := v.waitExtents(handles, berrs); err == nil {
			err = err2
		}
		if err == nil {
			if v.mirror.MaskedCount() > 0 {
				v.degradedReads.Add(1)
			}
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("%w: no replica served read [%d,+%d): %v", ErrDegraded, off, len(buf), lastErr)
}

// writeMirror fans a write out to every replica and sequences the
// outcome in the replication log: one record per acknowledged write,
// appended at completion (so a cursor can never pass a record its
// replica did not really apply), while every replica's ioMu read lock
// is still held — the resync worker's final caught-up check takes the
// write side, so it cannot declare a replica clean while a write that
// will append a record is in flight. Replicas that were down or
// resyncing need nothing logged per replica: the record sits above
// their frozen cursor, which IS the debt. A live replica that fails
// mid-write has the suspect range recorded as out-of-band debt and is
// tripped on the spot: it must leave the read rotation before it can
// serve that staleness back. The write succeeds when at least one
// replica accepted every byte.
func (v *Vault) writeMirror(off int64, data []byte) error {
	ext, err := v.layout.MapWrite(off, len(data))
	if err != nil {
		return err
	}
	// Group the fan-out per replica: with the single-member inner layout
	// every replica carries the same [off,+len) extent list.
	perReplica := make([][]volume.Extent, len(v.backends))
	for _, e := range ext {
		perReplica[e.Disk] = append(perReplica[e.Disk], volume.Extent{
			Disk: e.Disk, Offset: e.Offset, Length: e.Length,
		})
	}

	var handles []extentIO
	berrs := make(map[*backend]error)
	gens := make([]uint64, len(v.backends))
	skipped := 0
	issuedTo := make([]*backend, 0, len(v.backends))
	for r, rext := range perReplica {
		b := v.backends[r]
		b.ioMu.RLock() // held until the outcome is sequenced below
		if b.state.Load() != stateUp {
			skipped++
			continue
		}
		// Capture the consumer generation at issue: if the replica trips
		// while the write is in flight, the late ack carries a stale gen
		// and is discarded — the record stays above the rolled-back
		// cursor as replay debt instead.
		gens[r] = b.cur.Gen()
		hs, _, err := v.issueExtents(rext, data, true)
		handles = append(handles, hs...)
		if err != nil {
			berrs[b] = err
		}
		issuedTo = append(issuedTo, b)
	}
	_ = v.waitExtents(handles, berrs)

	succeeded := 0
	for _, b := range issuedTo {
		if berrs[b] == nil {
			succeeded++
		}
	}
	var seq uint64
	if succeeded > 0 {
		seq = v.rlog.Append(off, int64(len(data)))
	}
	var tripped []*backend
	for _, b := range issuedTo {
		if berrs[b] == nil {
			if seq != 0 {
				b.cur.Ack(seq, gens[b.idx])
			}
		} else {
			b.cur.Fail(off, int64(len(data)))
			tripped = append(tripped, b)
		}
	}
	for _, b := range v.backends {
		b.ioMu.RUnlock()
	}
	for _, b := range tripped {
		v.trip(b, fmt.Errorf("mirror write [%d,+%d): %w", off, len(data), berrs[b]))
	}
	if skipped > 0 || succeeded < len(issuedTo) {
		v.degradedWrites.Add(1)
	}
	if succeeded == 0 {
		var detail error
		for b, e := range berrs {
			detail = fmt.Errorf("backend %s: %w", b.addr, e)
			break
		}
		if detail == nil {
			detail = errors.New("every replica is down")
		}
		return fmt.Errorf("%w: mirror write [%d,+%d) reached no replica: %v",
			ErrDegraded, off, len(data), detail)
	}
	return nil
}

// Stats are cumulative cluster-level counters.
type Stats struct {
	// DegradedReads and DegradedWrites count operations served while at
	// least one replica was out of rotation.
	DegradedReads  int64
	DegradedWrites int64
	// Resyncs counts recovery passes started. ResyncedBytes is net
	// recovery progress — bytes brought back in sync, counted once per
	// outage no matter how many passes re-ran them — while
	// ResyncReplayedBytes is the gross replay traffic (stalls and
	// requeued passes re-count).
	Resyncs             int64
	ResyncedBytes       int64
	ResyncReplayedBytes int64
	// ResyncFallbacks counts catch-up passes (replica or feed) that
	// could not be served as precise record replay from a cursor —
	// the log had been truncated past it — and used the extent-merge
	// summary or full volume range instead.
	ResyncFallbacks int64
	// DegradedSeconds is cumulative wall time with at least one replica
	// out of the rotation (mirror mode), including any open interval.
	DegradedSeconds float64
}

// Stats returns cumulative counters.
func (v *Vault) Stats() Stats {
	s := Stats{
		DegradedReads:       v.degradedReads.Load(),
		DegradedWrites:      v.degradedWrites.Load(),
		Resyncs:             v.resyncs.Load(),
		ResyncedBytes:       v.resyncedBytes.Load(),
		ResyncReplayedBytes: v.resyncReplayed.Load(),
		DegradedSeconds:     v.degradedTime().Seconds(),
	}
	if v.rlog != nil {
		s.ResyncFallbacks = v.rlog.Stats().Fallbacks
	}
	return s
}

// Credits returns the vault's aggregate foreground credit window: the
// sum over backends of the data stream's negotiated carve-out (or the
// bare connection's session window when streams are off). It is the
// cluster's negotiated-credit-window equivalent — callers fanning a
// batch of page reads out over the vault should clamp their
// outstanding-request count to it, the same rule the single-session
// netv3 path applies with Client.Credits.
func (v *Vault) Credits() int {
	total := 0
	for _, b := range v.backends {
		b.mu.Lock()
		switch {
		case b.data != nil:
			total += b.data.Credits()
		case b.client != nil:
			total += b.client.Credits()
		}
		b.mu.Unlock()
	}
	if total <= 0 {
		total = 1
	}
	return total
}

// BackendStatus is one backend's health snapshot.
type BackendStatus struct {
	Addr        string
	State       string
	Consecutive int   // consecutive errors toward the trip threshold (worse of data path and probe)
	Trips       int64 // times this backend went Down
	Reconnects  int64 // netv3 session re-establishments on the current client
	DirtyRanges int   // extents awaiting resync (mirror mode)
	DirtyBytes  int64 // bytes awaiting resync (mirror mode)
	// LogCursor and LogWatermark are the replica's positions in the
	// replication log (mirror mode): every record ≤ LogCursor is applied
	// to the replica, every record ≤ LogWatermark is covered by a
	// successful flush barrier. UnflushedBytes is the byte coverage in
	// between — what a crash right now would cost this replica.
	LogCursor      uint64
	LogWatermark   uint64
	UnflushedBytes int64
	// LastProbeRTT is the most recent successful health probe's round
	// trip (0 before the first success).
	LastProbeRTT time.Duration
	// DataStream and ResyncStream are the logical stream ids the backend
	// rides when the peer negotiated multiplexing; 0 means the bare
	// connection (old peer, refusal, or Config.Streams off).
	DataStream   uint32
	ResyncStream uint32
	// StreamCredits is the data stream's granted credit carve-out
	// (0 on the bare connection).
	StreamCredits int
}

// Status snapshots every backend's health, in address order.
func (v *Vault) Status() []BackendStatus {
	out := make([]BackendStatus, len(v.backends))
	for i, b := range v.backends {
		consec := b.consec.Load()
		if p := b.probeConsec.Load(); p > consec {
			consec = p
		}
		s := BackendStatus{
			Addr:         b.addr,
			State:        stateName(b.state.Load()),
			Consecutive:  int(consec),
			Trips:        b.trips.Load(),
			LastProbeRTT: time.Duration(b.lastProbeRTT.Load()),
		}
		b.mu.Lock()
		if b.client != nil {
			s.Reconnects = b.client.Reconnects()
		}
		if b.data != nil {
			s.DataStream = b.data.ID()
			s.StreamCredits = b.data.Credits()
		}
		if b.rsync != nil {
			s.ResyncStream = b.rsync.ID()
		}
		b.mu.Unlock()
		if b.cur != nil {
			cs := b.cur.Stats()
			s.DirtyRanges, s.DirtyBytes = cs.DirtyRanges, cs.DirtyBytes
			s.LogCursor, s.LogWatermark = cs.Pos, cs.Durable
			s.UnflushedBytes = cs.UnflushedBytes
		}
		out[i] = s
	}
	return out
}

// ErrNoLog reports an operation that needs the replication log on a
// vault that has none (stripe mode).
var ErrNoLog = errors.New("vvault: no replication log (stripe mode)")

// Subscribe opens a cursor-resumable change feed over the mirror's
// replication log, from the beginning: the first batch covers
// everything the subscriber has never seen (for a fresh clone, the full
// volume as a fallback extent), then precise records, then the live
// tail via the feed's Wait. Batches are idempotent range copies, so a
// consumer that applies durably before committing can crash and resume.
func (v *Vault) Subscribe(name string) (*repl.Feed, error) {
	return v.SubscribeAt(name, 0)
}

// SubscribeAt is Subscribe resuming from a previously committed cursor.
func (v *Vault) SubscribeAt(name string, from uint64) (*repl.Feed, error) {
	if v.rlog == nil {
		return nil, ErrNoLog
	}
	return v.rlog.SubscribeAt(name, from), nil
}

// LogStatus snapshots the replication log (mirror mode; zero in stripe
// mode).
func (v *Vault) LogStatus() repl.LogStats {
	if v.rlog == nil {
		return repl.LogStats{}
	}
	return v.rlog.Stats()
}

// FeedCursors snapshots every open feed's committed cursor by name
// (mirror mode; nil in stripe mode).
func (v *Vault) FeedCursors() map[string]uint64 {
	if v.rlog == nil {
		return nil
	}
	return v.rlog.FeedCursors()
}
