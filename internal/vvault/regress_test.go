package vvault

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
)

// gateStore is a MemStore whose writes start failing after a countdown:
// while armed, each WriteAt spends one unit of allow and fails once the
// budget is gone. It shapes the mid-pass resync fault — the first replay
// chunk lands, the second trips the backend — that the net-progress
// accounting test needs.
type gateStore struct {
	*netv3.MemStore
	allow atomic.Int64
	armed atomic.Bool
}

func (g *gateStore) WriteAt(b []byte, off int64) error {
	if g.armed.Load() && g.allow.Add(-1) < 0 {
		return errors.New("injected write fault")
	}
	return g.MemStore.WriteAt(b, off)
}

// TestFlushNilClientTreatedAsFailedBarrier pins the durability contract
// of the cluster flush: an Up replica that cannot be issued a barrier
// (its client is gone) has acknowledged writes the barrier was supposed
// to cover, so Flush must fail and the replica must leave service with
// that debt recorded for resync — not be silently skipped while the
// cluster flush reports success.
func TestFlushNilClientTreatedAsFailedBarrier(t *testing.T) {
	const member = 1 << 20
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	_, addrB := startBackend(t, storeB, "127.0.0.1:0")
	cfg := testConfig(ModeMirror, member)
	// Park the probe loop: this test drives the state machine by hand and
	// must not race a probe tripping the severed backend first.
	cfg.ProbeInterval = 10 * time.Second
	v, err := Open([]string{addrA, addrB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	const off = 65536
	if err := v.Write(off, pattern(off, 1, 8192)); err != nil {
		t.Fatal(err)
	}

	// Sever replica B's client while its state still says Up — the exact
	// shape of the hazard: dataIO() returns nil but the flush loop sees a
	// live replica.
	b := v.backends[1]
	b.mu.Lock()
	old := b.client
	b.client, b.data, b.rsync = nil, nil, nil
	b.mu.Unlock()
	if old != nil {
		old.Close()
	}

	if err := v.Flush(); err == nil {
		t.Fatal("Flush reported success while an Up replica took no barrier; its acked write is not durable anywhere on it")
	}
	st := v.Status()[1]
	if st.State != "down" {
		t.Fatalf("replica without a client left %q after the failed barrier, want down", st.State)
	}
	if st.DirtyBytes < 8192 {
		t.Fatalf("acked-but-unflushed write not owed for resync after the failed barrier: %+v", st)
	}
}

// TestResyncedBytesNetOfRequeues pins resync progress accounting: a
// replay pass that fails mid-way requeues its tail and a later pass
// re-runs it, but the ResyncedBytes counter reports bytes brought back
// in sync — so replaying the same range twice must not count it twice.
func TestResyncedBytesNetOfRequeues(t *testing.T) {
	const (
		member = 1 << 20
		blk    = 8192
	)
	storeA := netv3.NewMemStore(member)
	storeB := &gateStore{MemStore: netv3.NewMemStore(member)}
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	cfg := testConfig(ModeMirror, member)
	cfg.ResyncChunk = blk // one replay chunk per block: the fault hits mid-pass
	v, err := Open([]string{addrA, addrB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Four flushed blocks while healthy: durable everywhere, never part
	// of any resync.
	for i := 0; i < 4; i++ {
		off := int64(i) * blk
		if err := v.Write(off, pattern(off, 1, blk)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)
	trips0 := v.Status()[1].Trips

	// Four blocks written during the outage: exactly 4*blk unique bytes
	// of replay debt.
	for i := 4; i < 8; i++ {
		off := int64(i) * blk
		if err := v.Write(off, pattern(off, 2, blk)); err != nil {
			t.Fatal(err)
		}
	}

	// Let the first recovery pass land one chunk and then fail, forcing a
	// requeue and a second pass over ranges already replayed once.
	storeB.allow.Store(1)
	storeB.armed.Store(true)
	_, _ = startBackend(t, storeB, addrB)
	deadline := time.Now().Add(15 * time.Second)
	for v.Status()[1].Trips == trips0 {
		if time.Now().After(deadline) {
			t.Fatal("first recovery pass never tripped on the injected fault")
		}
		time.Sleep(5 * time.Millisecond)
	}
	storeB.armed.Store(false)

	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	// The replicas converge...
	bufA, bufB := make([]byte, 8*blk), make([]byte, 8*blk)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("replicas diverged after requeued resync")
	}

	// ...and the counter reports the outage's unique bytes, not one count
	// per replay attempt of the same range.
	if got := v.Stats().ResyncedBytes; got != 4*blk {
		t.Fatalf("ResyncedBytes=%d after resyncing %d unique bytes (requeued replays double-counted?)", got, 4*blk)
	}
}
