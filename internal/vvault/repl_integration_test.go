package vvault

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

import "github.com/v3storage/v3/internal/netv3"

// failSyncStore wraps a MemStore with a switchable Sync fault: writes
// land (the replica's cache applies them) but the durability barrier
// fails — the exact shape of "crashed between replay and flush".
type failSyncStore struct {
	*netv3.MemStore
	failSync atomic.Bool
}

func (f *failSyncStore) Sync() error {
	if f.failSync.Load() {
		return errors.New("injected sync fault")
	}
	return f.MemStore.Sync()
}

// TestResyncCrashBetweenReplayAndFlushConverges pins the recovery
// protocol's hardest window: resync replays the outage data onto the
// replica, then the covering flush fails and the replica trips again —
// and whatever the replay put in the write-behind cache is lost (here:
// overwritten with garbage). The committed cursor must roll back to the
// watermark, so the next attempt replays the same ranges again instead
// of trusting the failed attempt, and the replicas end byte-identical.
func TestResyncCrashBetweenReplayAndFlushConverges(t *testing.T) {
	const (
		member = 1 << 20
		blk    = int64(8192)
	)
	storeA := netv3.NewMemStore(member)
	storeB := &failSyncStore{MemStore: netv3.NewMemStore(member)}
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// A flushed baseline on both replicas.
	for i := int64(0); i < 4; i++ {
		if err := v.Write(i*blk, pattern(i*blk, 1, int(blk))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill B and write the outage blocks it will owe.
	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)
	trips0 := v.Status()[1].Trips
	for i := int64(4); i < 8; i++ {
		if err := v.Write(i*blk, pattern(i*blk, 2, int(blk))); err != nil {
			t.Fatal(err)
		}
	}

	// B returns, but every durability barrier fails: each recovery
	// attempt replays the outage ranges and then trips on the flush.
	storeB.failSync.Store(true)
	_, _ = startBackend(t, storeB, addrB)
	deadline := time.Now().Add(15 * time.Second)
	for v.Status()[1].Trips < trips0+1 {
		if time.Now().After(deadline) {
			t.Fatalf("resync flush fault never tripped the replica: %+v", v.Status()[1])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The crash: the replayed-but-unflushed data did not survive. If the
	// cursor had committed past the replay despite the failed barrier,
	// nothing would ever overwrite this garbage.
	garbage := make([]byte, 4*blk)
	for i := range garbage {
		garbage[i] = 0xEE
	}
	if err := storeB.WriteAt(garbage, 4*blk); err != nil {
		t.Fatal(err)
	}

	// Heal the barrier: the next attempt must replay the same ranges
	// again and bring the replica back for real.
	storeB.failSync.Store(false)
	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	bufA, bufB := make([]byte, 8*blk), make([]byte, 8*blk)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("replicas diverged: the crash between replay and flush lost data")
	}
	if !bytes.Equal(bufB[4*blk:5*blk], pattern(4*blk, 2, int(blk))) {
		t.Fatal("garbage survived recovery in the outage region")
	}
}

// TestVaultFeedLiveCloneConverges drives the public change-feed API
// end-to-end: a clone consumer subscribes to a mirrored vault, catches
// up (the first batch covers the full volume), and follows the live
// tail while a writer keeps mutating the volume — converging
// byte-identically once the writer stops.
func TestVaultFeedLiveCloneConverges(t *testing.T) {
	const (
		member = 1 << 20
		blk    = int64(8192)
	)
	storeA := netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	_, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Content the clone has never seen: its first batch must cover it.
	if err := v.Write(member/2, pattern(member/2, 7, int(blk))); err != nil {
		t.Fatal(err)
	}

	feed, err := v.Subscribe("clone")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()
	clone := make([]byte, member)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	applyErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if !feed.Wait(stop) {
				return
			}
			b := feed.Poll(16)
			for _, e := range b.Fallback {
				if err := v.Read(e.Off, clone[e.Off:e.End]); err != nil {
					applyErr <- err
					return
				}
			}
			for _, r := range b.Records {
				if err := v.Read(r.Off, clone[r.Off:r.Off+r.Len]); err != nil {
					applyErr <- err
					return
				}
			}
			feed.Commit(b.Next)
		}
	}()

	for i := 0; i < 64; i++ {
		off := (int64(i*37) % (member/blk - 1)) * blk
		if err := v.Write(off, pattern(off, byte(2+i%5), int(blk))); err != nil {
			t.Fatal(err)
		}
	}

	// Writer done: the clone must drain to the log head, then match the
	// volume bit for bit.
	deadline := time.Now().Add(10 * time.Second)
	for feed.Cursor() < v.LogStatus().Head {
		select {
		case err := <-applyErr:
			t.Fatalf("clone apply: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("clone cursor stuck at %d of %d", feed.Cursor(), v.LogStatus().Head)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if cur, ok := v.FeedCursors()["clone"]; !ok || cur != v.LogStatus().Head {
		t.Fatalf("feed cursor not visible at head: %v", v.FeedCursors())
	}
	want := make([]byte, member)
	if err := v.Read(0, want[:member/2]); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(member/2, want[member/2:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clone, want) {
		t.Fatal("clone diverged from the volume after the feed drained")
	}
}

// TestChaosVaultCursorCatchUpSkipsFullRescan pins the tentpole's fast
// path: an outage short enough to fit the log window is caught up by
// precise cursor replay — no extent-merge fallback, and the bytes
// replayed are exactly the outage's writes, not a full-range re-scan.
func TestChaosVaultCursorCatchUpSkipsFullRescan(t *testing.T) {
	const (
		member = 2 << 20
		blk    = int64(8192)
		outage = 8 // blocks written while the replica is away
	)
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Plenty of flushed history before the outage: a full re-scan (or a
	// dirty-everything fallback) would replay far more than the outage.
	for i := int64(0); i < 64; i++ {
		if err := v.Write(i*blk, pattern(i*blk, 1, int(blk))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)
	for i := int64(0); i < outage; i++ {
		off := (64 + i) * blk
		if err := v.Write(off, pattern(off, 2, int(blk))); err != nil {
			t.Fatal(err)
		}
	}

	_, _ = startBackend(t, storeB, addrB)
	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	st := v.Stats()
	if st.ResyncFallbacks != 0 {
		t.Fatalf("cursor catch-up took %d fallback passes; fast path must be precise record replay", st.ResyncFallbacks)
	}
	if want := int64(outage) * blk; st.ResyncedBytes != want {
		t.Fatalf("resynced %d bytes for a %d-byte outage: not incremental catch-up", st.ResyncedBytes, want)
	}
	if st.ResyncReplayedBytes < st.ResyncedBytes {
		t.Fatalf("gross replay %d < net %d", st.ResyncReplayedBytes, st.ResyncedBytes)
	}
	bufA, bufB := make([]byte, (64+outage)*blk), make([]byte, (64+outage)*blk)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("replicas diverged after cursor catch-up")
	}
}

// TestChaosVaultTruncatedCursorFallback is the slow path: the outage
// outlives the log window (LogRecords writes), so precise replay from
// the tripped replica's cursor is impossible and catch-up must take the
// extent-merge fallback — counted, and still byte-identical.
func TestChaosVaultTruncatedCursorFallback(t *testing.T) {
	const (
		member = 1 << 20
		blk    = int64(8192)
	)
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	cfg := testConfig(ModeMirror, member)
	cfg.LogRecords = 8 // tiny window: the outage below truncates past B's cursor
	v, err := Open([]string{addrA, addrB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	if err := v.Write(0, pattern(0, 1, int(blk))); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)
	for i := int64(1); i < 33; i++ { // 32 records through an 8-record window
		if err := v.Write(i*blk, pattern(i*blk, 2, int(blk))); err != nil {
			t.Fatal(err)
		}
	}

	_, _ = startBackend(t, storeB, addrB)
	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.ResyncFallbacks == 0 {
		t.Fatalf("truncated-cursor catch-up reported no fallback: %+v", st)
	}
	bufA, bufB := make([]byte, 33*blk), make([]byte, 33*blk)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("replicas diverged after truncated-cursor fallback resync")
	}
}
