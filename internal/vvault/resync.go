package vvault

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// maxDirtyRanges caps the per-replica dirty log. Past the cap the two
// ranges with the smallest gap between them are merged — the log loses
// precision (resync copies the gap too), never data.
const maxDirtyRanges = 512

// xrange is a half-open dirty byte range [off, end) in the logical
// volume's address space (which, for a mirror replica, is also the
// member's address space).
type xrange struct {
	off, end int64
}

// extentLog tracks the ranges written while a replica was out of
// service: sorted, non-overlapping, adjacent runs merged.
type extentLog struct {
	mu     sync.Mutex
	ranges []xrange
}

func newExtentLog() *extentLog { return &extentLog{} }

// Add merges [off, off+length) into the log.
func (l *extentLog) Add(off, length int64) {
	if length <= 0 {
		return
	}
	end := off + length
	l.mu.Lock()
	defer l.mu.Unlock()
	// First range that could touch the new one (its end reaches off).
	i := sort.Search(len(l.ranges), func(i int) bool { return l.ranges[i].end >= off })
	j := i
	for j < len(l.ranges) && l.ranges[j].off <= end {
		if l.ranges[j].off < off {
			off = l.ranges[j].off
		}
		if l.ranges[j].end > end {
			end = l.ranges[j].end
		}
		j++
	}
	l.ranges = append(l.ranges[:i], append([]xrange{{off, end}}, l.ranges[j:]...)...)
	if len(l.ranges) > maxDirtyRanges {
		// Merge the pair with the smallest gap; precision for bounded size.
		best, gap := 0, int64(1)<<62
		for k := 0; k+1 < len(l.ranges); k++ {
			if g := l.ranges[k+1].off - l.ranges[k].end; g < gap {
				best, gap = k, g
			}
		}
		l.ranges[best].end = l.ranges[best+1].end
		l.ranges = append(l.ranges[:best+1], l.ranges[best+2:]...)
	}
}

// take removes and returns every logged range. Ranges added concurrently
// with or after the call stay for the next take.
func (l *extentLog) take() []xrange {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.ranges
	l.ranges = nil
	return out
}

// empty reports whether the log holds no ranges.
func (l *extentLog) empty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ranges) == 0
}

// stats returns the range count and total dirty bytes.
func (l *extentLog) stats() (int, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var bytes int64
	for _, r := range l.ranges {
		bytes += r.end - r.off
	}
	return len(l.ranges), bytes
}

// resyncLoop replays a recovered replica's dirty ranges from the live
// replicas, then returns it to service. It runs while the backend is in
// the Resync state and exits when the replica is clean (→ Up) or fails
// again (→ Down; the probe loop restarts recovery, and the dirty log —
// re-stocked with whatever was not replayed — persists across attempts).
//
// Convergence under concurrent writes: writes that cannot reach the
// replica log their extent *after* completing on the live replicas,
// holding the replica's ioMu read lock across check→complete→log. The
// final clean check here takes the ioMu write lock, so it cannot pass
// while such a write is still in flight; any write that completes later
// must have logged before the check, forcing another replay round.
func (v *Vault) resyncLoop(b *backend) {
	defer v.wg.Done()
	v.resyncs.Add(1)
	buf := make([]byte, v.cfg.ResyncChunk)
	for {
		if v.closed.Load() || b.state.Load() != stateResync {
			return
		}
		ranges := b.dirty.take()
		if len(ranges) == 0 {
			// Everything replayed so far: make it durable, then try to
			// declare the replica clean. On flush failure the trip moves
			// the replayed-but-unflushed ranges back to the dirty log, so
			// the next recovery attempt replays them again.
			if err := v.flushBackend(b); err != nil {
				v.trip(b, fmt.Errorf("resync flush: %w", err))
				return
			}
			b.unflushed.take() // the barrier covered every replay so far
			b.ioMu.Lock()
			done := b.dirty.empty() && b.state.Load() == stateResync
			if done {
				b.mu.Lock()
				b.state.Store(stateUp)
				b.mu.Unlock()
				v.mirror.SetMask(b.idx, false)
				v.noteMaskChange()
			}
			b.ioMu.Unlock()
			if done {
				v.logf("vvault: backend %s resynced and back in rotation", b.addr)
				return
			}
			continue // new writes arrived during the flush; another round
		}
	replay:
		for ri, r := range ranges {
			cur := r.off
			for cur < r.end {
				n := min(r.end-cur, int64(len(buf)))
				if err := v.readMirror(cur, buf[:n]); err != nil {
					// No live replica could source the data. The recovered
					// backend is fine — requeue the tail and retry the whole
					// pass after a beat.
					v.requeue(b, ranges[ri+1:], xrange{cur, r.end})
					v.logf("vvault: resync of %s stalled (source read: %v); will retry", b.addr, err)
					select {
					case <-v.done:
						return
					case <-time.After(v.cfg.ProbeInterval):
					}
					break replay
				}
				if err := v.writeBackend(b, cur, buf[:n]); err != nil {
					v.requeue(b, ranges[ri+1:], xrange{cur, r.end})
					v.trip(b, fmt.Errorf("resync write [%d,+%d): %w", cur, n, err))
					return
				}
				// Replayed but not yet durable: like any acked write, the
				// range sits in the unflushed log until the resync flush
				// covers it, so a crash in between re-dirties it.
				b.unflushed.Add(cur, n)
				v.resyncedBytes.Add(n)
				cur += n
			}
		}
	}
}

// requeue puts the unreplayed tail of a failed pass back in the log.
func (v *Vault) requeue(b *backend, rest []xrange, cur xrange) {
	if cur.off < cur.end {
		b.dirty.Add(cur.off, cur.end-cur.off)
	}
	for _, r := range rest {
		b.dirty.Add(r.off, r.end-r.off)
	}
}

// writeBackend writes data straight to one backend (resync path),
// chunked to the transfer cap. It rides the backend's background-lane
// resync stream when one is attached, so replay traffic queues in the
// server's background QoS lane instead of competing with live I/O.
func (v *Vault) writeBackend(b *backend, off int64, data []byte) error {
	c := b.resyncIO()
	if c == nil {
		return fmt.Errorf("backend %s has no client", b.addr)
	}
	deadline := time.Now().Add(v.cfg.IOTimeout)
	maxio := v.maxIO()
	for len(data) > 0 {
		n := min(len(data), maxio)
		h, err := c.WriteAsync(v.cfg.Volume, off, data[:n])
		if err != nil {
			return err
		}
		if err := waitUntil(h, deadline); err != nil {
			return err
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// flushBackend runs the durability barrier on one backend (resync
// path), on the same background stream as the replay writes.
func (v *Vault) flushBackend(b *backend) error {
	c := b.resyncIO()
	if c == nil {
		return fmt.Errorf("backend %s has no client", b.addr)
	}
	h, err := c.FlushAsync(v.cfg.Volume)
	if err != nil {
		return err
	}
	return h.WaitTimeout(v.cfg.IOTimeout)
}
