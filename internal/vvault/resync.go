package vvault

import (
	"fmt"
	"time"

	"github.com/v3storage/v3/internal/repl"
)

// resyncLoop catches a recovered replica up from the replication log,
// then returns it to service. It runs while the backend is in the
// Resync state and exits when the replica is clean (→ Up) or fails
// again (→ Down; the probe loop restarts recovery, and the cursor —
// which only advances when a replay pass commits — resumes exactly
// where the last attempt left off, no full-range re-scan).
//
// Each round asks the replica's consumer for a catch-up plan: coverage
// of the records above its cursor plus its out-of-band debt. On the
// fast path that is precise, incremental record replay; only when the
// log was truncated past the cursor does the plan fall back to the
// folded extent summary (or the full volume range). An empty plan means
// nothing was owed as of the call — run the durability barrier, then
// try to declare the replica clean.
//
// Convergence under concurrent writes: a write holds the replica's ioMu
// read lock from the moment it observes its state until its outcome is
// sequenced in the log. The final clean check here takes the ioMu write
// lock, so it cannot pass while such a write is still in flight; any
// write that completes later must have appended its record before the
// check, forcing another replay round.
func (v *Vault) resyncLoop(b *backend) {
	defer v.wg.Done()
	v.resyncs.Add(1)
	buf := make([]byte, v.cfg.ResyncChunk)
	for {
		if v.closed.Load() || b.state.Load() != stateResync {
			return
		}
		plan := b.cur.CatchUp()
		if len(plan.Extents) > 0 {
			if plan.Fallback {
				v.logf("vvault: resync of %s fell back to extent coverage (log truncated past cursor)", b.addr)
			}
			if !v.replayPlan(b, plan, buf) {
				return
			}
			continue
		}
		// Everything replayed so far: make it durable, then try to
		// declare the replica clean. Snapshot-first barrier — the commit
		// advances the watermark (and settles replayed debt) only if the
		// replica did not trip under the flush.
		bar := b.cur.BarrierBegin()
		if err := v.flushBackend(b); err != nil {
			v.trip(b, fmt.Errorf("resync flush: %w", err))
			return
		}
		b.cur.BarrierCommit(bar)
		b.ioMu.Lock()
		done := b.cur.CaughtUp() && b.state.Load() == stateResync
		if done {
			b.mu.Lock()
			b.state.Store(stateUp)
			b.mu.Unlock()
			b.cur.SetLive(true)
			v.mirror.SetMask(b.idx, false)
			v.noteMaskChange()
		}
		b.ioMu.Unlock()
		if done {
			v.logf("vvault: backend %s resynced and back in rotation", b.addr)
			return
		}
		continue // new writes arrived during the flush; another round
	}
}

// replayPlan replays one catch-up plan onto the recovering replica,
// sourcing each chunk from the live replicas. It returns false when the
// resync loop must exit (vault closing, or the replica tripped again).
// A pass abandoned mid-way — source stall or replica failure — simply
// never commits: the cursor has not moved, so the next CatchUp resumes
// from the same position and net progress accounting skips what already
// landed.
func (v *Vault) replayPlan(b *backend, plan repl.Plan, buf []byte) bool {
	for _, e := range plan.Extents {
		cur := e.Off
		for cur < e.End {
			n := min(e.End-cur, int64(len(buf)))
			if err := v.readMirror(cur, buf[:n]); err != nil {
				// No live replica could source the data. The recovered
				// backend is fine — drop the pass and retry after a beat.
				v.logf("vvault: resync of %s stalled (source read: %v); will retry", b.addr, err)
				select {
				case <-v.done:
					return false
				case <-time.After(v.cfg.ProbeInterval):
				}
				return true
			}
			if err := v.writeBackend(b, cur, buf[:n]); err != nil {
				v.trip(b, fmt.Errorf("resync write [%d,+%d): %w", cur, n, err))
				return false
			}
			v.resyncReplayed.Add(n)
			v.resyncedBytes.Add(b.cur.CountReplay(cur, n))
			cur += n
		}
	}
	b.cur.CommitReplay(plan)
	return true
}

// writeBackend writes data straight to one backend (resync path),
// chunked to the transfer cap. It rides the backend's background-lane
// resync stream when one is attached, so replay traffic queues in the
// server's background QoS lane instead of competing with live I/O.
func (v *Vault) writeBackend(b *backend, off int64, data []byte) error {
	c := b.resyncIO()
	if c == nil {
		return fmt.Errorf("backend %s has no client", b.addr)
	}
	deadline := time.Now().Add(v.cfg.IOTimeout)
	maxio := v.maxIO()
	for len(data) > 0 {
		n := min(len(data), maxio)
		h, err := c.WriteAsync(v.cfg.Volume, off, data[:n])
		if err != nil {
			return err
		}
		if err := waitUntil(h, deadline); err != nil {
			return err
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// flushBackend runs the durability barrier on one backend (resync
// path), on the same background stream as the replay writes.
func (v *Vault) flushBackend(b *backend) error {
	c := b.resyncIO()
	if c == nil {
		return fmt.Errorf("backend %s has no client", b.addr)
	}
	h, err := c.FlushAsync(v.cfg.Volume)
	if err != nil {
		return err
	}
	return h.WaitTimeout(v.cfg.IOTimeout)
}
