package vvault

import (
	"context"
	"errors"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

// errProbeStarved marks a probe that could not even acquire a credit
// slot within ProbeTimeout — the window is wedged or saturated. It
// counts toward the error threshold rather than tripping at once, so a
// briefly saturated (but healthy) backend survives a probe or two while
// a truly wedged one trips after ErrorThreshold ticks.
var errProbeStarved = errors.New("vvault: probe starved of credit slot")

// fatalErr reports errors that mean the backend session is gone (as
// opposed to an I/O status the backend itself returned): connection loss
// after exhausted reconnects, a closed client, or a completion wait that
// timed out. These trip the backend immediately instead of counting
// toward the threshold.
func fatalErr(err error) bool {
	return errors.Is(err, netv3.ErrConnLost) ||
		errors.Is(err, netv3.ErrClosed) ||
		errors.Is(err, netv3.ErrWaitTimeout)
}

// recordError charges one data-path failure against a backend: fatal
// errors trip it at once, others trip after ErrorThreshold consecutive
// failures. An admission shed (ErrOverloaded) is load, not damage — the
// backend answered, explicitly asking for backoff — so it neither trips
// nor counts toward the threshold; the caller still sees the error and
// owns the retry.
func (v *Vault) recordError(b *backend, err error) {
	if errors.Is(err, netv3.ErrOverloaded) {
		return
	}
	if fatalErr(err) {
		v.trip(b, err)
		return
	}
	if int(b.consec.Add(1)) >= v.cfg.ErrorThreshold {
		v.trip(b, err)
	}
}

// recordSuccess resets the data-path consecutive-error count.
func (v *Vault) recordSuccess(b *backend) {
	b.consec.Store(0)
}

// recordProbeError / recordProbeSuccess are the probe loop's versions of
// the pair above, on a separate counter: a backend can answer probes
// while failing real I/O, and a passing probe must not keep resetting
// the count that sporadic data-path errors are accumulating.
func (v *Vault) recordProbeError(b *backend, err error) {
	if errors.Is(err, netv3.ErrOverloaded) {
		return
	}
	if fatalErr(err) {
		v.trip(b, err)
		return
	}
	if int(b.probeConsec.Add(1)) >= v.cfg.ErrorThreshold {
		v.trip(b, err)
	}
}

func (v *Vault) recordProbeSuccess(b *backend) {
	b.probeConsec.Store(0)
}

// trip takes a backend out of service: state Down, replica masked out of
// the mirror read rotation, and the client closed so everything blocked
// on it (including submitters waiting for credit slots) fails fast. The
// probe loop owns recovery.
func (v *Vault) trip(b *backend, cause error) {
	b.mu.Lock()
	if b.state.Load() == stateDown {
		b.mu.Unlock()
		return
	}
	b.state.Store(stateDown)
	b.trips.Add(1)
	// A trip is exactly the moment the flight recorder exists for: mark
	// an incident so the ring's last moments — the errors, sheds, and
	// replica I/O leading here — are frozen for /debug/flightrec.
	v.flight.Record(netv3.FlightReplicaTrip, 0, uint64(b.idx), uint64(b.consec.Load()))
	v.flight.Incident("backend-trip")
	if v.mirror != nil {
		v.mirror.SetMask(b.idx, true)
		v.noteMaskChange()
	}
	c := b.client
	b.data, b.rsync = nil, nil // they die with the client below
	b.mu.Unlock()
	// The backend destages write-behind, so writes it acknowledged since
	// its last successful flush may not have reached stable storage; if it
	// crashed it can come back without them. The cursor reset encodes
	// exactly that: it rolls back to the flush watermark, so the records
	// in between — plus everything appended while the replica is away —
	// are the replay debt resync serves from the log, instead of trusting
	// a possibly-crashed cache.
	if b.cur != nil {
		b.cur.Reset()
	}
	if c != nil {
		c.Close()
	}
	v.logf("vvault: backend %s tripped: %v", b.addr, cause)
}

// probeLoop is one backend's health driver. While the backend is up it
// issues a zero-length read of block 0 — the cheapest request the wire
// protocol can express — and bounds the completion wait, so a hung (not
// just dead) backend also trips. While the backend is down it attempts a
// fresh dial; success hands a mirror replica to the resync worker and
// returns a striped member straight to service (striping has no
// redundancy to resync from — the backend returns with whatever its
// store holds, which is intact for a restarted file-backed v3d).
func (v *Vault) probeLoop(b *backend) {
	defer v.wg.Done()
	t := time.NewTicker(v.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-v.done:
			return
		case <-t.C:
		}
		switch b.state.Load() {
		case stateUp:
			v.probeOnce(b)
		case stateDown:
			v.tryRecover(b)
		case stateResync:
			// The resync worker owns the backend until it finishes or
			// trips it back to Down.
		}
	}
}

// probeOnce issues the zero-length health read, timing its round trip.
// Submission is bounded by ProbeTimeout: when hung data-path requests
// have exhausted the credit window, the probe must NOT join the queue
// of goroutines blocked on a slot — that wedge would silence the one
// loop whose job is to trip the wedged backend. A slot-acquire timeout
// counts toward the error threshold (a loaded-but-healthy backend can
// legitimately run out of window for a few probes); the completion
// timeout below stays fatal via fatalErr, as before.
func (v *Vault) probeOnce(b *backend) {
	c := b.getClient()
	if c == nil {
		v.trip(b, errors.New("no client"))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), v.cfg.ProbeTimeout)
	t0 := obs.Now()
	h, err := c.ReadAsyncCtx(ctx, v.cfg.Volume, 0, nil)
	cancel()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = errProbeStarved
		}
		v.recordProbeError(b, err)
		return
	}
	if err := h.WaitTimeout(v.cfg.ProbeTimeout); err != nil {
		v.recordProbeError(b, err)
		return
	}
	rtt := obs.Now() - t0
	b.lastProbeRTT.Store(rtt)
	v.probeRTT.Observe(rtt)
	v.recordProbeSuccess(b)
}

// tryRecover dials a fresh session to a down backend and, on success,
// puts it back on the road to service.
func (v *Vault) tryRecover(b *backend) {
	c, err := netv3.Dial(b.addr, v.cfg.Client)
	if err != nil {
		return // still down; next tick retries
	}
	b.mu.Lock()
	if b.state.Load() != stateDown || v.closed.Load() {
		b.mu.Unlock()
		c.Close()
		return
	}
	old := b.client
	b.client = c
	b.data, b.rsync = nil, nil // stale streams of the old client
	b.consec.Store(0)
	b.probeConsec.Store(0)
	// A backend that was unreachable at Open never contributed its
	// MaxTransfer; honour it now, before any I/O is chunked for it.
	v.clampMaxIO(c.MaxTransfer())
	if v.mirror != nil {
		b.state.Store(stateResync)
	} else {
		b.state.Store(stateUp)
	}
	b.mu.Unlock()
	if old != nil {
		old.Close()
	}
	v.attachStreams(b, c)
	if v.mirror != nil {
		v.logf("vvault: backend %s reachable again; resyncing", b.addr)
		v.wg.Add(1)
		go v.resyncLoop(b)
	} else {
		v.logf("vvault: backend %s back in service", b.addr)
	}
}
