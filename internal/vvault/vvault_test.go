package vvault

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/volume"
)

// startBackend runs one v3d-equivalent server on addr ("127.0.0.1:0"
// for ephemeral) over the given store, so a test can kill it and bring
// it back with the replica's data intact.
func startBackend(t testing.TB, store netv3.BlockStore, addr string) (*netv3.Server, string) {
	t.Helper()
	return startBackendCfg(t, store, addr, netv3.DefaultServerConfig())
}

// startBackendCfg is startBackend with a custom server config, for tests
// that need a backend with e.g. a smaller transfer bound.
func startBackendCfg(t testing.TB, store netv3.BlockStore, addr string, cfg netv3.ServerConfig) (*netv3.Server, string) {
	t.Helper()
	srv := netv3.NewServer(cfg)
	srv.AddVolume(1, store)
	a, err := srv.Listen(addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, a.String()
}

// faultStore wraps a MemStore with switchable write failures, so a
// backend can stay reachable (probes pass) while its data path fails —
// the exact shape of fault the error accounting must not be blind to.
type faultStore struct {
	*netv3.MemStore
	failWrites atomic.Bool
}

func (f *faultStore) WriteAt(b []byte, off int64) error {
	if f.failWrites.Load() {
		return errors.New("injected write fault")
	}
	return f.MemStore.WriteAt(b, off)
}

// testConfig returns a Config with failover timings tightened for tests.
func testConfig(mode Mode, member int64) Config {
	cfg := DefaultConfig(mode)
	cfg.MemberSize = member
	cfg.StripeSize = 8192
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.ProbeTimeout = 500 * time.Millisecond
	cfg.IOTimeout = 2 * time.Second
	cfg.ErrorThreshold = 2
	cfg.Client.ReconnectBackoff = 10 * time.Millisecond
	cfg.Client.MaxReconnects = 1
	cfg.Client.DialTimeout = time.Second
	return cfg
}

// pattern fills a block with content derived from (offset, generation),
// so replica comparisons catch both lost writes and misplaced ones.
func pattern(off int64, gen byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(off>>13) ^ byte(i) ^ (gen * 31)
	}
	return b
}

// waitForState polls until backend idx reaches the wanted state.
func waitForState(t *testing.T, v *Vault, idx int, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if v.Status()[idx].State == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("backend %d never reached %q: status=%+v", idx, want, v.Status())
}

// deadAddr returns an address nothing listens on.
func deadAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestStripeRoundtrip(t *testing.T) {
	const member = 1 << 20
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	_, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeStripe, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.Size() != 2*member {
		t.Fatalf("size=%d, want %d", v.Size(), 2*member)
	}
	// A write spanning several stripe units lands interleaved on both
	// backends and reads back intact.
	data := pattern(4096, 1, 40960)
	if err := v.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped read-back mismatch")
	}
	// Both members actually hold bytes: the interleave is real, not a
	// pass-through to one server.
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, st := range []*netv3.MemStore{storeA, storeB} {
		chunk := make([]byte, 8192)
		if err := st.ReadAt(chunk, 8192); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(chunk, make([]byte, 8192)) {
			t.Fatalf("member %d got no data", i)
		}
	}
}

func TestMirrorWriteFanOutAndReplicaEquality(t *testing.T) {
	const member = 1 << 20
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	_, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.Size() != member {
		t.Fatalf("size=%d, want %d", v.Size(), member)
	}
	for off := int64(0); off < member; off += 65536 {
		if err := v.Write(off, pattern(off, 1, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	bufA, bufB := make([]byte, member), make([]byte, member)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Fatal("mirror replicas diverged after healthy writes")
	}
	got := make([]byte, 8192)
	if err := v.Read(65536, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(65536, 1, 8192)) {
		t.Fatal("mirror read-back mismatch")
	}
}

// TestMirrorFailoverAndResync is the subsystem's flagship contract: a
// mirrored vault over two live backends keeps serving reads and writes
// with one backend killed mid-workload, and after the backend restarts
// (with its pre-kill data), resync replays the dirty extents until a
// full read-back shows both replicas byte-identical.
func TestMirrorFailoverAndResync(t *testing.T) {
	const (
		member  = 2 << 20
		blk     = 8192
		writers = 4
		perW    = 16 // blocks owned per writer
		gens    = 6
	)
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// A static region in the back half, written once while healthy, for
	// exact content checks during the outage.
	staticOff := int64(member / 2)
	staticData := pattern(staticOff, 9, 4*blk)
	if err := v.Write(staticOff, staticData); err != nil {
		t.Fatal(err)
	}

	// Writers hammer disjoint blocks in the front half through rising
	// generations; the workload spans the kill, the outage, and the
	// restart.
	var wrote atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := byte(1); gen <= gens; gen++ {
				for i := 0; i < perW; i++ {
					off := int64((w*perW + i) * blk)
					if err := v.Write(off, pattern(off, gen, blk)); err != nil {
						errCh <- fmt.Errorf("writer %d gen %d off %d: %w", w, gen, off, err)
						return
					}
					wrote.Add(1)
				}
			}
		}(w)
	}

	// Kill backend B while the workload runs.
	for wrote.Load() < 30 {
		time.Sleep(time.Millisecond)
	}
	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)

	// Degraded: reads and writes keep working, served by the survivor.
	got := make([]byte, len(staticData))
	if err := v.Read(staticOff, got); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, staticData) {
		t.Fatal("degraded read returned wrong data")
	}
	if err := v.Write(staticOff+int64(len(staticData)), pattern(0, 7, blk)); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if st := v.Status()[1]; st.DirtyBytes == 0 {
		t.Fatalf("no dirty extents logged for the dead replica: %+v", st)
	}

	// Restart B on the same address with its old (stale) data; resync
	// must replay everything written during the outage.
	_, _ = startBackend(t, storeB, addrB)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	// Full read-back through fresh clients: both replicas byte-identical.
	cliA, err := netv3.Dial(addrA, netv3.DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cliA.Close()
	cliB, err := netv3.Dial(addrB, netv3.DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()
	bufA, bufB := make([]byte, 65536), make([]byte, 65536)
	for off := int64(0); off < member; off += 65536 {
		if err := cliA.Read(1, off, bufA); err != nil {
			t.Fatal(err)
		}
		if err := cliB.Read(1, off, bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("replicas differ at [%d,+65536) after resync", off)
		}
	}
	// And the logical content is the final generation everywhere.
	blkBuf := make([]byte, blk)
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			off := int64((w*perW + i) * blk)
			if err := v.Read(off, blkBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blkBuf, pattern(off, gens, blk)) {
				t.Fatalf("block at %d lost its final generation", off)
			}
		}
	}
	if s := v.Stats(); s.Resyncs == 0 || s.ResyncedBytes == 0 || s.DegradedWrites == 0 {
		t.Fatalf("stats did not record the episode: %+v", s)
	}
}

// TestStripeDegradedFailFast pins stripe-mode fault semantics: requests
// touching a dead member fail fast with ErrDegraded, requests that map
// entirely onto live members keep working.
func TestStripeDegradedFailFast(t *testing.T) {
	const member = 1 << 20
	_, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	srvB, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeStripe, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	buf := make([]byte, 8192)
	if err := v.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)

	// Stripe unit 0 → backend 0: still served.
	if err := v.Read(0, buf); err != nil {
		t.Fatalf("read on live member failed: %v", err)
	}
	// Stripe unit 1 → backend 1: fail fast, clearly.
	if err := v.Read(8192, buf); !errors.Is(err, ErrDegraded) {
		t.Fatalf("read on dead member: err=%v, want ErrDegraded", err)
	}
	// A spanning write needs both members: fail fast too.
	if err := v.Write(0, make([]byte, 16384)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("spanning write: err=%v, want ErrDegraded", err)
	}
}

func TestMirrorAllReplicasDown(t *testing.T) {
	const member = 1 << 20
	srvA, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	srvB, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	srvA.Close()
	srvB.Close()
	waitForState(t, v, 0, "down", 10*time.Second)
	waitForState(t, v, 1, "down", 10*time.Second)
	if err := v.Read(0, make([]byte, 512)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("read with all replicas down: err=%v, want ErrDegraded", err)
	}
	if err := v.Write(0, make([]byte, 512)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write with all replicas down: err=%v, want ErrDegraded", err)
	}
	// The durability barrier must not report success when it reached no
	// replica at all.
	if err := v.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("flush with all replicas down: err=%v, want ErrDegraded", err)
	}
}

// TestMirrorOpenWithDeadReplica: the vault comes up degraded when a
// replica is unreachable at Open, with the whole volume pre-dirtied so
// recovery implies a full resync.
func TestMirrorOpenWithDeadReplica(t *testing.T) {
	const member = 1 << 20
	_, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, deadAddr(t)}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	st := v.Status()
	if st[1].State != "down" || st[1].DirtyBytes != member {
		t.Fatalf("dead replica not marked fully dirty: %+v", st[1])
	}
	data := pattern(0, 3, 8192)
	if err := v.Write(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded-from-open read-back mismatch")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, DefaultConfig(ModeStripe)); err == nil {
		t.Fatal("no addresses accepted")
	}
	cfg := DefaultConfig(ModeMirror)
	cfg.MemberSize = 1 << 20
	if _, err := Open([]string{"x"}, cfg); err == nil {
		t.Fatal("single-backend mirror accepted")
	}
	cfg = DefaultConfig(ModeStripe)
	if _, err := Open([]string{"x", "y"}, cfg); err == nil {
		t.Fatal("zero MemberSize accepted")
	}
	cfg.MemberSize = 100 // not a multiple of the stripe unit
	if _, err := Open([]string{"x", "y"}, cfg); err == nil {
		t.Fatal("non-multiple MemberSize accepted")
	}
}

// TestVaultUsesMirrorMapping pins that the vault drives the volume
// package's Mirror, so read rotation is observable at the backends.
func TestVaultUsesMirrorMapping(t *testing.T) {
	const member = 1 << 20
	srvA, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	srvB, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	buf := make([]byte, 512)
	base := srvA.Served() + srvB.Served()
	for i := 0; i < 8; i++ {
		if err := v.Read(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Probes also generate requests, so just require both backends saw
	// data traffic beyond the baseline — rotation touched both.
	if srvA.Served() == 0 || srvB.Served() == 0 || srvA.Served()+srvB.Served() < base+8 {
		t.Fatalf("rotation did not spread reads: A=%d B=%d", srvA.Served(), srvB.Served())
	}
	_ = volume.Extent{} // keep the volume import honest about intent
}

// TestMirrorWriteFailureTripsReplica pins the no-stale-reads contract: a
// replica whose mirror write fails keeps answering probes, but it now
// holds stale data for an extent the vault acknowledged — so it must
// leave the read rotation immediately, not linger Up until an error
// threshold that passing probes keep resetting.
func TestMirrorWriteFailureTripsReplica(t *testing.T) {
	const member = 1 << 20
	storeA := netv3.NewMemStore(member)
	storeB := &faultStore{MemStore: netv3.NewMemStore(member)}
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	_, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	const off = 65536
	stale := pattern(off, 1, 8192)
	if err := v.Write(off, stale); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	// One write fails on B (which keeps serving reads and probes). The
	// vault write still succeeds — A took it — but B is now stale there.
	storeB.failWrites.Store(true)
	fresh := pattern(off, 2, 8192)
	if err := v.Write(off, fresh); err != nil {
		t.Fatalf("mirror write with one faulty replica: %v", err)
	}
	waitForState(t, v, 1, "down", 10*time.Second)

	// Every read must serve the acknowledged data; a rotation onto B
	// would hand back the stale generation.
	got := make([]byte, len(fresh))
	for i := 0; i < 16; i++ {
		if err := v.Read(off, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fresh) {
			t.Fatalf("read %d returned stale data after acknowledged write", i)
		}
	}

	// Heal the store: resync replays the dirty extent and the replicas
	// converge again.
	storeB.failWrites.Store(false)
	waitForState(t, v, 1, "up", 20*time.Second)
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	bufA, bufB := make([]byte, 8192), make([]byte, 8192)
	if err := storeA.ReadAt(bufA, off); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) || !bytes.Equal(bufA, fresh) {
		t.Fatal("replicas did not converge on the acknowledged write after resync")
	}
}

// TestTripMarksUnflushedWritesDirty pins the write-behind hazard: v3d
// acknowledges writes before destaging them, so a write acked by a
// replica that then crashes may be lost — the trip must leave it in the
// dirty log for resync even though the write itself never failed.
func TestTripMarksUnflushedWritesDirty(t *testing.T) {
	const member = 1 << 20
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	srvB, addrB := startBackend(t, storeB, "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// A flushed write is durable everywhere: it must NOT come back dirty.
	if err := v.Write(0, pattern(0, 1, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	// An acked-but-unflushed write is durable nowhere on B if B crashes.
	const off = 131072
	if err := v.Write(off, pattern(off, 2, 8192)); err != nil {
		t.Fatal(err)
	}
	srvB.Close()
	waitForState(t, v, 1, "down", 10*time.Second)
	st := v.Status()[1]
	if st.DirtyBytes != 8192 || st.DirtyRanges != 1 {
		t.Fatalf("dirty log after crash = %d bytes in %d ranges, want exactly the unflushed write (8192 in 1)", st.DirtyBytes, st.DirtyRanges)
	}
}

// TestRecoveredBackendClampsMaxTransfer pins recovery against a backend
// whose transfer bound is smaller than the cluster's: a replica that was
// unreachable at Open must contribute its MaxTransfer when it joins, or
// resync and mirror writes chunked at the old cap would be rejected and
// wedge recovery.
func TestRecoveredBackendClampsMaxTransfer(t *testing.T) {
	const member = 256 << 10
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	addrB := deadAddr(t)
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Write(0, pattern(0, 1, member)); err != nil {
		t.Fatal(err)
	}

	// B joins late with a 64 KB bound; the whole volume is pre-dirtied,
	// so resync itself must already honour the smaller cap.
	smallCfg := netv3.DefaultServerConfig()
	smallCfg.MaxXfer = 64 << 10
	startBackendCfg(t, storeB, addrB, smallCfg)
	waitForState(t, v, 1, "up", 20*time.Second)
	if got := v.maxIO(); got != 64<<10 {
		t.Fatalf("maxIO after recovery = %d, want %d", got, 64<<10)
	}

	// A transfer above B's bound still succeeds, chunked at the new cap.
	data := pattern(0, 3, 128<<10)
	if err := v.Write(0, data); err != nil {
		t.Fatalf("large write after clamp: %v", err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	bufA, bufB := make([]byte, len(data)), make([]byte, len(data))
	if err := storeA.ReadAt(bufA, 0); err != nil {
		t.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, data) || !bytes.Equal(bufB, data) {
		t.Fatal("replicas diverged after clamped large write")
	}
}

func TestZeroLengthProbeOp(t *testing.T) {
	const member = 1 << 20
	_, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	_, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	v, err := Open([]string{addrA, addrB}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	// The probe op is a zero-length read; the public API accepts it too.
	if err := v.Read(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(v.Size(), []byte{}); err != nil {
		t.Fatal(err) // boundary zero-length is legal, like the layouts
	}
	if err := v.Read(v.Size()+1, []byte{}); err == nil {
		t.Fatal("out-of-range zero-length read accepted")
	}
}
