package vvault

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
)

// delayStore adds fixed device latency to a MemStore, for overload tests
// that need the backend's scheduler to saturate.
type delayStore struct {
	*netv3.MemStore
	delay time.Duration
}

func (d *delayStore) ReadAt(b []byte, off int64) error {
	time.Sleep(d.delay)
	return d.MemStore.ReadAt(b, off)
}

func (d *delayStore) WriteAt(b []byte, off int64) error {
	time.Sleep(d.delay)
	return d.MemStore.WriteAt(b, off)
}

// TestVaultRidesStreams checks the vault adopts the multiplexing feature
// end to end: against stream-capable backends every replica rides a
// foreground data stream plus a background resync stream, I/O works, and
// a replica that dies and returns gets fresh streams on its new client.
func TestVaultRidesStreams(t *testing.T) {
	member := int64(1 << 20)
	scfg := netv3.DefaultServerConfig()
	scfg.SchedWorkers = 2
	store0 := netv3.NewMemStore(member)
	srv0, addr0 := startBackendCfg(t, store0, "127.0.0.1:0", scfg)
	_, addr1 := startBackendCfg(t, netv3.NewMemStore(member), "127.0.0.1:0", scfg)

	v, err := Open([]string{addr0, addr1}, testConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	for i, s := range v.Status() {
		if s.DataStream == 0 {
			t.Fatalf("backend %d: no data stream (status %+v)", i, s)
		}
		if s.ResyncStream == 0 {
			t.Fatalf("backend %d: no resync stream", i)
		}
		if s.StreamCredits != 48 {
			t.Fatalf("backend %d: stream credits = %d, want 48", i, s.StreamCredits)
		}
	}

	data := pattern(8192, 1, 16384)
	if err := v.Write(8192, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.Read(8192, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("readback mismatch at %d", i)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill replica 0, write while degraded, bring it back: recovery must
	// attach fresh streams on the new client and resync on the background
	// one.
	srv0.Close()
	waitForState(t, v, 0, "down", 5*time.Second)
	if err := v.Write(0, pattern(0, 2, 8192)); err != nil {
		t.Fatal(err)
	}
	startBackendCfg(t, store0, addr0, scfg)
	waitForState(t, v, 0, "up", 10*time.Second)
	s := v.Status()[0]
	if s.DataStream == 0 || s.ResyncStream == 0 {
		t.Fatalf("recovered backend has no streams: %+v", s)
	}
}

// TestVaultStreamsOff checks the explicit fallback: with Config.Streams
// false the vault rides bare connections (stream ids zero) and serves
// I/O exactly as before the feature existed.
func TestVaultStreamsOff(t *testing.T) {
	member := int64(1 << 20)
	_, addr0 := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	_, addr1 := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")

	cfg := testConfig(ModeMirror, member)
	cfg.Streams = false
	v, err := Open([]string{addr0, addr1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	for i, s := range v.Status() {
		if s.DataStream != 0 || s.ResyncStream != 0 || s.StreamCredits != 0 {
			t.Fatalf("backend %d: unexpected streams with Streams off: %+v", i, s)
		}
	}
	data := pattern(0, 3, 8192)
	if err := v.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(0, make([]byte, len(data))); err != nil {
		t.Fatal(err)
	}
}

// TestVaultOverloadNotFatal hammers a deliberately undersized backend
// scheduler through the vault and checks the health contract: admission
// sheds surface to the caller as ErrOverloaded but never count toward
// the trip threshold — a backend asking for backoff is healthy, and
// tripping it would turn transient load into an outage.
func TestVaultOverloadNotFatal(t *testing.T) {
	member := int64(4 << 20)
	scfg := netv3.DefaultServerConfig()
	scfg.SchedWorkers = 1
	scfg.AdmitLimit = 1
	startBackendStore := &delayStore{MemStore: netv3.NewMemStore(member), delay: time.Millisecond}
	_, addr := startBackendCfg(t, startBackendStore, "127.0.0.1:0", scfg)

	cfg := testConfig(ModeStripe, member)
	cfg.ErrorThreshold = 2 // trip fast if sheds were (wrongly) counted
	v, err := Open([]string{addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	var sheds, ok atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < 40; i++ {
				err := v.Read(int64((g*40+i)%256)*4096, buf)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, netv3.ErrOverloaded):
					sheds.Add(1)
				default:
					t.Errorf("read %d: %v", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if sheds.Load() == 0 {
		t.Skip("offered load never tripped admission control on this machine")
	}
	s := v.Status()[0]
	if s.State != "up" {
		t.Fatalf("backend state %q after %d sheds — overload must not trip", s.State, sheds.Load())
	}
	if s.Trips != 0 {
		t.Fatalf("backend tripped %d times under overload", s.Trips)
	}
	// And the path still serves once load subsides.
	time.Sleep(50 * time.Millisecond)
	if err := v.Read(0, make([]byte, 4096)); err != nil && !errors.Is(err, netv3.ErrOverloaded) {
		t.Fatalf("post-storm read: %v", err)
	}
}
