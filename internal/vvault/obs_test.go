package vvault

import (
	"strings"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

// TestMetricsAndDegradedTime exercises the cluster-level observability:
// probe RTTs surface in Status and the registry, and wall time spent
// with a replica out of rotation accumulates in DegradedSeconds.
func TestMetricsAndDegradedTime(t *testing.T) {
	const member = 1 << 20
	_, addrA := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	srvB, addrB := startBackend(t, netv3.NewMemStore(member), "127.0.0.1:0")
	reg := obs.New()
	cfg := testConfig(ModeMirror, member)
	cfg.Metrics = reg
	v, err := Open([]string{addrA, addrB}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Healthy phase: probes complete and record RTTs.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := v.Status()
		if st[0].LastProbeRTT > 0 && st[1].LastProbeRTT > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, st := range v.Status() {
		if st.LastProbeRTT <= 0 {
			t.Fatalf("backend %d recorded no probe RTT: %+v", i, st)
		}
	}
	if s := v.Stats(); s.DegradedSeconds != 0 {
		t.Fatalf("DegradedSeconds = %v while fully mirrored, want 0", s.DegradedSeconds)
	}

	// Kill one replica; the vault trips it and degraded time starts.
	srvB.Close()
	if err := v.Write(0, pattern(0, 1, 8192)); err != nil {
		t.Fatal(err)
	}
	waitForState(t, v, 1, "down", 5*time.Second)
	time.Sleep(50 * time.Millisecond)
	s := v.Stats()
	if s.DegradedSeconds <= 0 {
		t.Fatalf("DegradedSeconds = %v after replica loss, want > 0", s.DegradedSeconds)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"vvault_probe_rtt_ns",
		`vvault_backend_state{backend="1",addr=`,
		"vvault_backend_dirty_bytes",
		"vvault_degraded_ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	snap := reg.Snapshot()
	if h := snap.Hists["vvault_probe_rtt_ns"]; h.Count <= 0 || h.MeanNS <= 0 {
		t.Fatalf("probe RTT histogram empty: %+v", h)
	}
}
