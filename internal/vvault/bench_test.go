package vvault

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/benchjson"
	"github.com/v3storage/v3/internal/netv3"
)

// benchRecord shares the netv3 bench schema so cluster rows land in the
// same BENCH_JSON file; the merge-by-name writer means the ordering of
// netv3 and vvault runs no longer matters, and re-runs replace this
// package's rows instead of duplicating them.
type benchRecord = benchjson.Record

var (
	benchMu      sync.Mutex
	benchRecords []benchRecord
)

func record(r benchRecord) {
	benchMu.Lock()
	benchRecords = append(benchRecords, r)
	benchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" {
		_ = benchjson.Write(path, benchRecords)
	}
	os.Exit(code)
}

// benchDelay is the injected per-I/O store latency on every backend.
// The default server config dispatches inline (one request at a time per
// session), so with a fixed service time the backend count is the
// concurrency ceiling — exactly what the cluster rows are meant to show.
const benchDelay = 100 * time.Microsecond

// benchMember is each backend's contribution.
const benchMember int64 = 32 << 20

type benchSlowStore struct {
	netv3.BlockStore
	delay time.Duration
}

func (s *benchSlowStore) ReadAt(b []byte, off int64) error {
	time.Sleep(s.delay)
	return s.BlockStore.ReadAt(b, off)
}

func (s *benchSlowStore) WriteAt(b []byte, off int64) error {
	time.Sleep(s.delay)
	return s.BlockStore.WriteAt(b, off)
}

// benchCluster starts n delay-injected backends and a vault over them.
func benchCluster(b *testing.B, mode Mode, n int) (*Vault, []*netv3.Server) {
	b.Helper()
	servers := make([]*netv3.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := netv3.NewServer(netv3.DefaultServerConfig())
		srv.AddVolume(1, &benchSlowStore{BlockStore: netv3.NewMemStore(benchMember), delay: benchDelay})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve()
		b.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = addr.String()
	}
	cfg := DefaultConfig(mode)
	cfg.MemberSize = benchMember
	cfg.StripeSize = 8192
	cfg.Client.DialTimeout = time.Second
	cfg.Client.ReconnectBackoff = 10 * time.Millisecond
	cfg.Client.MaxReconnects = 1
	v, err := Open(addrs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { v.Close() })
	return v, servers
}

// clusterReads drives b.N size-aligned reads through the vault from
// `outstanding` goroutines and returns ops/s. Aligned 8 KB requests on an
// 8 KB stripe touch exactly one backend each, so striped throughput
// scales with the member count instead of splitting every request.
func clusterReads(b *testing.B, v *Vault, size, outstanding int) float64 {
	b.Helper()
	region := v.Size()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	t0 := time.Now()
	for g := 0; g < outstanding; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, size)
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				off := (n * int64(size)) % (region - int64(size))
				off -= off % int64(size)
				if err := v.Read(off, buf); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	b.StopTimer()
	return float64(b.N) / elapsed.Seconds()
}

// BenchmarkNetv3ClusterStripe shows RAID-0 scale-out over real TCP
// backends: the same 8 KB × 16-outstanding workload over 1, 2 and 4
// members — the paper's case for spanning V3 volumes across nodes.
func BenchmarkNetv3ClusterStripe(b *testing.B) {
	const size, outstanding = 8192, 16
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			v, _ := benchCluster(b, ModeStripe, n)
			ops := clusterReads(b, v, size, outstanding)
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(ops*size/1e6, "MB/s")
			record(benchRecord{
				Name:      fmt.Sprintf("Netv3ClusterStripe/backends=%d/8192x16", n),
				OpsPerSec: ops, MBPerSec: ops * size / 1e6,
			})
		})
	}
}

// BenchmarkNetv3ClusterMirrorRead shows RAID-1 read scaling: the rotation
// spreads reads over the replicas, so read throughput grows with the
// replica count even though every replica holds the same data.
func BenchmarkNetv3ClusterMirrorRead(b *testing.B) {
	const size, outstanding = 8192, 16
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			v, _ := benchCluster(b, ModeMirror, n)
			ops := clusterReads(b, v, size, outstanding)
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(ops*size/1e6, "MB/s")
			record(benchRecord{
				Name:      fmt.Sprintf("Netv3ClusterMirrorRead/replicas=%d/8192x16", n),
				OpsPerSec: ops, MBPerSec: ops * size / 1e6,
			})
		})
	}
}

// BenchmarkNetv3ClusterDegraded measures a 2-way mirror serving the read
// workload with one replica down — the failover overhead: all traffic on
// the survivor plus the health machinery's bookkeeping.
func BenchmarkNetv3ClusterDegraded(b *testing.B) {
	const size, outstanding = 8192, 16
	v, servers := benchCluster(b, ModeMirror, 2)
	servers[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for v.Status()[1].State != "down" {
		if time.Now().After(deadline) {
			b.Fatalf("backend 1 never tripped: %+v", v.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ops := clusterReads(b, v, size, outstanding)
	b.ReportMetric(ops, "ops/s")
	b.ReportMetric(ops*size/1e6, "MB/s")
	record(benchRecord{
		Name:      "Netv3ClusterDegraded/mirror2-1down/8192x16",
		OpsPerSec: ops, MBPerSec: ops * size / 1e6,
	})
}

// BenchmarkNetv3Resync contrasts the two recovery paths the replication
// log separates: "cursor-catchup" replays exactly the records a short
// outage appended past the tripped replica's cursor (here a 1 MB
// outage against an 8 MB member), while "full-rescan" is the floor it
// replaced — a replica joining with unknown content replays the whole
// volume. Each iteration is one full outage/recovery episode, so run
// with -benchtime 1x; the rows report wall-clock recovery time and the
// net replay rate.
func BenchmarkNetv3Resync(b *testing.B) {
	const (
		resyncMember = int64(8 << 20)
		blk          = int64(8192)
		outageBlocks = 128 // 1 MB written while the replica is away
	)
	resyncCfg := func() Config {
		cfg := DefaultConfig(ModeMirror)
		cfg.MemberSize = resyncMember
		cfg.ProbeInterval = 5 * time.Millisecond
		cfg.Client.DialTimeout = time.Second
		cfg.Client.ReconnectBackoff = 10 * time.Millisecond
		cfg.Client.MaxReconnects = 1
		return cfg
	}
	waitState := func(b *testing.B, v *Vault, want string) {
		b.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for v.Status()[1].State != want {
			if time.Now().After(deadline) {
				b.Fatalf("replica never reached %q: %+v", want, v.Status())
			}
			time.Sleep(time.Millisecond)
		}
	}
	report := func(b *testing.B, name string, d time.Duration, bytes int64) {
		b.ReportMetric(float64(d.Microseconds()), "recovery_us")
		rate := float64(bytes) / 1e6 / d.Seconds()
		b.ReportMetric(rate, "MB/s")
		record(benchRecord{Name: name, MBPerSec: rate, MeanMicros: float64(d.Microseconds())})
	}

	b.Run("cursor-catchup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			func() {
				storeA, storeB := netv3.NewMemStore(resyncMember), netv3.NewMemStore(resyncMember)
				_, addrA := startBackend(b, storeA, "127.0.0.1:0")
				srvB, addrB := startBackend(b, storeB, "127.0.0.1:0")
				v, err := Open([]string{addrA, addrB}, resyncCfg())
				if err != nil {
					b.Fatal(err)
				}
				defer v.Close()
				for off := int64(0); off < 2<<20; off += blk {
					if err := v.Write(off, pattern(off, 1, int(blk))); err != nil {
						b.Fatal(err)
					}
				}
				if err := v.Flush(); err != nil {
					b.Fatal(err)
				}
				srvB.Close()
				waitState(b, v, "down")
				for j := int64(0); j < outageBlocks; j++ {
					off := j * blk
					if err := v.Write(off, pattern(off, 2, int(blk))); err != nil {
						b.Fatal(err)
					}
				}
				_, _ = startBackend(b, storeB, addrB)
				t0 := time.Now()
				waitState(b, v, "up")
				report(b, "Netv3Resync/cursor-catchup/1MB-outage",
					time.Since(t0), v.Stats().ResyncedBytes)
			}()
		}
	})

	b.Run("full-rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			func() {
				storeA, storeB := netv3.NewMemStore(resyncMember), netv3.NewMemStore(resyncMember)
				_, addrA := startBackend(b, storeA, "127.0.0.1:0")
				addrB := deadAddr(b)
				// B is unreachable at open: its content is unknown, so
				// recovery owes the whole volume, not an outage's records.
				v, err := Open([]string{addrA, addrB}, resyncCfg())
				if err != nil {
					b.Fatal(err)
				}
				defer v.Close()
				for j := int64(0); j < outageBlocks; j++ {
					off := j * blk
					if err := v.Write(off, pattern(off, 2, int(blk))); err != nil {
						b.Fatal(err)
					}
				}
				_, _ = startBackend(b, storeB, addrB)
				t0 := time.Now()
				waitState(b, v, "up")
				report(b, "Netv3Resync/full-rescan/8MB-volume",
					time.Since(t0), v.Stats().ResyncedBytes)
			}()
		}
	})
}
