package vvault

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/faultnet"
	"github.com/v3storage/v3/internal/netv3"
)

// startFaultBackend runs a v3d-equivalent backend whose sessions all
// pass through a faultnet injector, so a test can blackhole the backend
// — alive at the TCP level, silent at the protocol level — which is the
// failure the probe loop and keepalive exist to catch.
func startFaultBackend(t *testing.T, store netv3.BlockStore) (*faultnet.Injector, string) {
	t.Helper()
	inj := faultnet.New(1)
	srv := netv3.NewServer(netv3.DefaultServerConfig())
	srv.AddVolume(1, store)
	ln, err := inj.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ListenOn(ln)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return inj, ln.Addr().String()
}

// chaosConfig tightens testConfig further for blackhole scenarios: short
// keepalive so the clients themselves notice silent peers, and dial
// bounds small enough that reconnect attempts into a blackhole fail
// fast instead of eating the test budget.
func chaosConfig(mode Mode, member int64) Config {
	cfg := testConfig(mode, member)
	cfg.ProbeTimeout = 300 * time.Millisecond
	cfg.IOTimeout = 2 * time.Second
	cfg.Client.KeepaliveInterval = 200 * time.Millisecond
	cfg.Client.DialTimeout = 300 * time.Millisecond
	cfg.Client.MaxReconnects = 2
	cfg.Client.ReconnectBackoff = 20 * time.Millisecond
	return cfg
}

// TestChaosVaultBlackholedBackendFailoverAndResync is the cluster-level
// headline: a mirror replica goes SILENT (blackholed, not killed — its
// listener still accepts), the vault must trip it while serving from the
// healthy replica, and once the partition heals the probe loop must
// bring it back through resync with the data it missed.
func TestChaosVaultBlackholedBackendFailoverAndResync(t *testing.T) {
	const member = 1 << 20
	storeA := netv3.NewMemStore(member)
	storeB := netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	injB, addrB := startFaultBackend(t, storeB)
	v, err := Open([]string{addrA, addrB}, chaosConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Seed data while both replicas are healthy.
	for i := 0; i < 8; i++ {
		if err := v.Write(int64(i)*8192, pattern(int64(i)*8192, 1, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	// The partition: B stays accept-able but goes protocol-silent.
	injB.Blackhole(true)
	// I/O must keep succeeding (mirror degrades to A) and B must trip —
	// via probe timeout, keepalive hung-detection, or IO timeout,
	// whichever fires first; all roads lead to Down.
	deadline := time.Now().Add(15 * time.Second)
	gen := byte(2)
	for v.Status()[1].State != "down" {
		if time.Now().After(deadline) {
			t.Fatalf("blackholed backend never tripped: %+v", v.Status())
		}
		if err := v.Write(0, pattern(0, gen, 8192)); err != nil {
			t.Fatalf("write during partition: %v", err)
		}
		gen++
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("backend tripped; trips=%d", v.Status()[1].Trips)
	// Degraded-mode writes that B will have to catch up on.
	for i := 8; i < 16; i++ {
		if err := v.Write(int64(i)*8192, pattern(int64(i)*8192, 3, 8192)); err != nil {
			t.Fatalf("degraded write %d: %v", i, err)
		}
	}
	// Heal. The probe loop redials, resyncs the dirty ranges, and
	// returns B to service.
	injB.Blackhole(false)
	waitForState(t, v, 1, "up", 20*time.Second)
	// Every byte — including the degraded-mode writes — must now be
	// readable, and B's replica must actually hold the catch-up data.
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	for i := 8; i < 16; i++ {
		if err := v.Read(int64(i)*8192, got); err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(int64(i)*8192, 3, 8192)) {
			t.Fatalf("block %d wrong after resync", i)
		}
		if err := storeB.ReadAt(got, int64(i)*8192); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(int64(i)*8192, 3, 8192)) {
			t.Fatalf("replica B missing degraded-mode block %d after resync", i)
		}
	}
}

// TestChaosVaultProbeWedge is the regression test for the probe-loop
// wedge: with the credit window exhausted by hung data-path requests,
// probeOnce used to block forever inside the unbounded credit acquire —
// the health loop could never trip the very backend that wedged it.
// Bounded acquisition turns that into threshold-counted probe failures
// and the backend trips. Client keepalive is disabled to prove the probe
// path alone detects it.
func TestChaosVaultProbeWedge(t *testing.T) {
	const member = 1 << 20
	inj, addr := startFaultBackend(t, netv3.NewMemStore(member))
	cfg := chaosConfig(ModeStripe, member)
	cfg.Client.KeepaliveInterval = 0 // isolate: only the probe can save us
	cfg.Client.WantCredits = 2       // tiny window wedges fast
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.IOTimeout = 30 * time.Second // data path holds its slots for ages
	v, err := Open([]string{addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Write(0, pattern(0, 1, 8192)); err != nil {
		t.Fatal(err)
	}
	// Silence the backend, then wedge the whole credit window with
	// data-path reads that will sit on their slots for IOTimeout.
	inj.Blackhole(true)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = v.Read(0, make([]byte, 8192)) // fails eventually; that's fine
		}()
	}
	// The probe loop must still trip the backend: starved probes count
	// toward the threshold instead of joining the wedge. Pre-fix this
	// poll never succeeds — probeOnce is parked in <-creditC.
	deadline := time.Now().Add(10 * time.Second)
	for v.Status()[0].State != "down" {
		if time.Now().After(deadline) {
			t.Fatalf("probe loop wedged: backend never tripped (status=%+v)", v.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Tripping closed the client, so the wedged readers fail fast now
	// rather than waiting out IOTimeout.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("wedged data-path requests did not fail after trip")
	}
	inj.Blackhole(false)
	waitForState(t, v, 0, "up", 20*time.Second)
	got := make([]byte, 8192)
	if err := v.Read(0, got); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if !bytes.Equal(got, pattern(0, 1, 8192)) {
		t.Fatal("data lost across probe-wedge trip/recovery")
	}
}

// TestChaosVaultBlackholedDialDoesNotWedgeRecovery pins the recovery
// loop's dial bound: tryRecover dials a backend that accepts TCP but
// never answers the handshake. The dial must fail within DialTimeout and
// the vault must keep serving — recovery ticks never stack up behind a
// hung handshake.
func TestChaosVaultBlackholedDialDoesNotWedgeRecovery(t *testing.T) {
	const member = 1 << 20
	storeA := netv3.NewMemStore(member)
	storeB := netv3.NewMemStore(member)
	_, addrA := startBackend(t, storeA, "127.0.0.1:0")
	injB, addrB := startFaultBackend(t, storeB)
	v, err := Open([]string{addrA, addrB}, chaosConfig(ModeMirror, member))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Write(0, pattern(0, 1, 8192)); err != nil {
		t.Fatal(err)
	}
	injB.Blackhole(true)
	waitForState(t, v, 1, "down", 15*time.Second)
	// B is down and BLACKHOLED: every tryRecover dial TCP-connects and
	// then hangs in the handshake until DialTimeout. Throughout, the
	// healthy half must serve reads at full tilt.
	stop := time.Now().Add(2 * time.Second)
	buf := make([]byte, 8192)
	for time.Now().Before(stop) {
		start := time.Now()
		if err := v.Read(0, buf); err != nil {
			t.Fatalf("read while recovery dials a blackhole: %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("read took %v while recovery dials a blackhole", d)
		}
	}
	injB.Blackhole(false)
	waitForState(t, v, 1, "up", 20*time.Second)
}

// deadConn is a sanity guard for the harness itself: the injector's
// listener really does accept while blackholed, which is what separates
// these scenarios from plain kill-the-server tests.
func TestChaosHarnessAcceptsWhileBlackholed(t *testing.T) {
	inj, addr := startFaultBackend(t, netv3.NewMemStore(1<<20))
	inj.Blackhole(true)
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("blackholed backend refused TCP: %v", err)
	}
	c.Close()
}
