package faultnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error surfaced by scheduled store faults.
var ErrInjected = errors.New("faultnet: injected I/O error")

// BlockStore is the structural mirror of netv3.BlockStore, so Store
// satisfies that interface without importing the package (tests wire the
// two together; production code never imports faultnet).
type BlockStore interface {
	ReadAt(b []byte, off int64) error
	WriteAt(b []byte, off int64) error
	Sync() error
	Size() int64
	Close() error
}

// StoreConfig schedules a Store's faults. All counters are in operations
// (reads + writes), making the schedule deterministic under concurrency:
// exactly one op out of every ErrEvery fails, whichever goroutine draws
// it.
type StoreConfig struct {
	// Latency is added to every read and write — a slow disk.
	Latency time.Duration
	// ErrEvery fails every Nth operation with ErrInjected (0 disables).
	ErrEvery int64
	// ShortEvery makes every Nth operation a short transfer: half the
	// requested bytes move, and the op reports a short-I/O error naming
	// the byte counts, like FileStore does (0 disables).
	ShortEvery int64
}

// Store wraps a BlockStore with scheduled faults. The zero schedule is a
// transparent pass-through; FailAll flips every operation to ErrInjected
// until cleared (a dead disk).
type Store struct {
	inner BlockStore
	cfg   StoreConfig
	ops   atomic.Int64
	fail  atomic.Bool

	mu      sync.Mutex
	syncErr error // next Sync returns this once, then clears
}

// NewStore wraps inner with the given fault schedule.
func NewStore(inner BlockStore, cfg StoreConfig) *Store {
	return &Store{inner: inner, cfg: cfg}
}

// FailAll makes every operation fail with ErrInjected while on — the
// disk died (as opposed to the scheduled intermittent faults).
func (s *Store) FailAll(on bool) { s.fail.Store(on) }

// FailNextSync makes the next Sync call return err (one-shot) — for
// exercising flush-barrier failure paths.
func (s *Store) FailNextSync(err error) {
	s.mu.Lock()
	s.syncErr = err
	s.mu.Unlock()
}

// Ops returns the number of reads+writes observed.
func (s *Store) Ops() int64 { return s.ops.Load() }

// fault decides this operation's fate: nil (run it), ErrInjected, or a
// short transfer (shortN >= 0 means transfer only shortN bytes and
// report a short-I/O error).
func (s *Store) fault(reqLen int) (shortN int, err error) {
	if s.cfg.Latency > 0 {
		time.Sleep(s.cfg.Latency)
	}
	if s.fail.Load() {
		return -1, ErrInjected
	}
	n := s.ops.Add(1)
	if s.cfg.ErrEvery > 0 && n%s.cfg.ErrEvery == 0 {
		return -1, ErrInjected
	}
	if s.cfg.ShortEvery > 0 && n%s.cfg.ShortEvery == 0 && reqLen > 1 {
		return reqLen / 2, nil
	}
	return -1, nil
}

// ReadAt implements BlockStore with scheduled faults.
func (s *Store) ReadAt(b []byte, off int64) error {
	shortN, err := s.fault(len(b))
	if err != nil {
		return fmt.Errorf("faultnet: read [%d,+%d): %w", off, len(b), err)
	}
	if shortN >= 0 {
		if err := s.inner.ReadAt(b[:shortN], off); err != nil {
			return err
		}
		return fmt.Errorf("faultnet: short read [%d,+%d): got %d bytes: %w", off, len(b), shortN, ErrInjected)
	}
	return s.inner.ReadAt(b, off)
}

// WriteAt implements BlockStore with scheduled faults.
func (s *Store) WriteAt(b []byte, off int64) error {
	shortN, err := s.fault(len(b))
	if err != nil {
		return fmt.Errorf("faultnet: write [%d,+%d): %w", off, len(b), err)
	}
	if shortN >= 0 {
		if err := s.inner.WriteAt(b[:shortN], off); err != nil {
			return err
		}
		return fmt.Errorf("faultnet: short write [%d,+%d): wrote %d bytes: %w", off, len(b), shortN, ErrInjected)
	}
	return s.inner.WriteAt(b, off)
}

// Sync implements BlockStore, honoring FailNextSync and FailAll.
func (s *Store) Sync() error {
	s.mu.Lock()
	serr := s.syncErr
	s.syncErr = nil
	s.mu.Unlock()
	if serr != nil {
		return serr
	}
	if s.fail.Load() {
		return fmt.Errorf("faultnet: sync: %w", ErrInjected)
	}
	return s.inner.Sync()
}

// Size implements BlockStore.
func (s *Store) Size() int64 { return s.inner.Size() }

// Close implements BlockStore.
func (s *Store) Close() error { return s.inner.Close() }
