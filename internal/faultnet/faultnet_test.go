package faultnet

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair builds a wrapped server-side conn talking to a raw client
// conn over a real TCP loopback pair.
func pipePair(t *testing.T, inj *Injector) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := inj.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-accepted
	t.Cleanup(func() { server.Close() })
	return server, client
}

func TestPassThrough(t *testing.T) {
	inj := New(1)
	server, client := pipePair(t, inj)
	msg := []byte("hello through the injector")
	go client.Write(msg)
	got := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestBlackholeSwallowsWritesAndStallsReads(t *testing.T) {
	inj := New(1)
	server, client := pipePair(t, inj)
	inj.Blackhole(true)

	// Server-side writes succeed but deliver nothing.
	if _, err := server.Write([]byte("vanishes")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := client.Read(buf); err == nil {
		t.Fatal("client received bytes through a blackhole")
	}

	// Server-side reads stall and honor the read deadline.
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := server.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read: err=%v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > time.Second {
		t.Fatalf("deadline fired after %v", d)
	}

	// Healing restores the pipe.
	inj.Blackhole(false)
	server.SetReadDeadline(time.Time{})
	go client.Write([]byte("back"))
	got := make([]byte, 4)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFull(server, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestBlackholedReadUnblocksOnClose(t *testing.T) {
	inj := New(1)
	server, _ := pipePair(t, inj)
	inj.Blackhole(true)
	done := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 8))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on closed blackholed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed read did not unblock on close")
	}
}

func TestResetAllSevers(t *testing.T) {
	inj := New(1)
	server, client := pipePair(t, inj)
	_ = server
	if n := inj.ResetAll(); n != 1 {
		t.Fatalf("ResetAll closed %d conns, want 1", n)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer of a reset conn still readable")
	}
}

func TestLatencyAndBandwidth(t *testing.T) {
	inj := New(7)
	server, client := pipePair(t, inj)
	inj.SetLatency(20*time.Millisecond, 0)
	go client.Write([]byte("x"))
	start := time.Now()
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := server.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency fault not applied: read returned in %v", d)
	}
	inj.SetLatency(0, 0)
	inj.SetBandwidth(1 << 10) // 1 KB/s: 512 bytes ≈ 500ms
	go server.Write(make([]byte, 512))
	start = time.Now()
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFull(client, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 300*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: 512 B in %v", d)
	}
}

type memStore struct{ data []byte }

func (m *memStore) ReadAt(b []byte, off int64) error  { copy(b, m.data[off:]); return nil }
func (m *memStore) WriteAt(b []byte, off int64) error { copy(m.data[off:], b); return nil }
func (m *memStore) Sync() error                       { return nil }
func (m *memStore) Size() int64                       { return int64(len(m.data)) }
func (m *memStore) Close() error                      { return nil }

func TestStoreSchedule(t *testing.T) {
	inner := &memStore{data: make([]byte, 1024)}
	s := NewStore(inner, StoreConfig{ErrEvery: 3, ShortEvery: 5})
	var errs, shorts, oks int
	buf := make([]byte, 16)
	for i := 0; i < 30; i++ {
		err := s.ReadAt(buf, 0)
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrInjected) && bytes.Contains([]byte(err.Error()), []byte("short")):
			shorts++
		case errors.Is(err, ErrInjected):
			errs++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Ops 3,6,9,...,30 fail (10); of the short slots 5,10,...,30 only
	// those not already failing (5, 20, 25 — not 10/15? 15 is err, 10 err?
	// 10 not multiple of 3; 10 short, 15 err, 20 short, 25 short) — pin
	// exact determinism by count.
	if errs != 10 {
		t.Fatalf("errs=%d, want 10", errs)
	}
	if shorts != 4 { // ops 5, 10, 20, 25 (15 and 30 are claimed by ErrEvery)
		t.Fatalf("shorts=%d, want 4", shorts)
	}
	if oks != 16 {
		t.Fatalf("oks=%d, want 16", oks)
	}
	// FailAll flips everything.
	s.FailAll(true)
	if err := s.WriteAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailAll write: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailAll sync: %v", err)
	}
	s.FailAll(false)
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after clear: %v", err)
	}
	// One-shot sync failure.
	s.FailNextSync(ErrInjected)
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("FailNextSync: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after one-shot: %v", err)
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := c.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
