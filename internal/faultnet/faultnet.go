// Package faultnet is deterministic fault injection for the netv3/vvault
// stack: wrappers around net.Listener/net.Conn and BlockStore that
// reproduce the failure classes the paper's DSA layer exists to survive
// (Section 3: raw VI tears the connection down on any error, so DSA adds
// timeouts, retransmission and reconnection). The wrappers make those
// failures schedulable from a test instead of waiting for a sick
// interconnect:
//
//   - Blackhole: the peer hangs without closing — reads stall, writes are
//     silently swallowed. This is the failure ordinary error handling
//     cannot see; only deadline/keepalive machinery detects it.
//   - Latency / bandwidth cap: a slow link, for exercising timeouts and
//     cancellation under load.
//   - Reset: every tracked connection is severed at once (the classic
//     "connection closed" failure, for contrast with blackhole).
//   - Short / erroring store I/O: the backing disk fails or truncates
//     every Nth operation, counter-deterministic under concurrency.
//
// Determinism: explicit toggles are deterministic by construction; the
// only randomness is the optional latency jitter, drawn from a seeded
// rand.Rand, so a fixed seed and op order replay the same schedule.
package faultnet

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// pollInterval is how often a blackholed Read rechecks the world. Coarse
// is fine: blackhole detection latencies under test are tens of
// milliseconds and up.
const pollInterval = time.Millisecond

// Injector owns one fault domain: every connection accepted through its
// Listener (or wrapped explicitly) shares the same fault state, so
// "blackhole the server" is one call. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand // jitter; guarded by mu
	conns map[*Conn]struct{}

	blackhole bool
	latency   time.Duration // added to every conn I/O
	jitter    time.Duration // max extra latency, drawn from rng
	bps       int64         // bandwidth cap in bytes/sec; 0 = unlimited
}

// New returns an injector whose randomized choices (latency jitter) are
// driven by seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// Blackhole turns the silent-peer fault on or off. While on, reads on
// every wrapped conn stall (honoring read deadlines) and writes succeed
// without delivering anything — the shape of a hung, not closed, peer.
func (i *Injector) Blackhole(on bool) {
	i.mu.Lock()
	i.blackhole = on
	i.mu.Unlock()
}

// Blackholed reports the current blackhole state.
func (i *Injector) Blackholed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.blackhole
}

// SetLatency adds d (plus up to jitter, seed-deterministically) to every
// conn read and write.
func (i *Injector) SetLatency(d, jitter time.Duration) {
	i.mu.Lock()
	i.latency, i.jitter = d, jitter
	i.mu.Unlock()
}

// SetBandwidth caps the byte rate of every conn; 0 removes the cap.
func (i *Injector) SetBandwidth(bytesPerSec int64) {
	i.mu.Lock()
	i.bps = bytesPerSec
	i.mu.Unlock()
}

// ResetAll severs every tracked connection — the abrupt-close fault, as
// opposed to blackhole's silence. Returns how many were closed.
func (i *Injector) ResetAll() int {
	i.mu.Lock()
	conns := make([]*Conn, 0, len(i.conns))
	for c := range i.conns {
		conns = append(conns, c)
	}
	i.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// delay sleeps out the configured latency, jitter and bandwidth cost of
// an n-byte transfer.
func (i *Injector) delay(n int) {
	i.mu.Lock()
	d := i.latency
	if i.jitter > 0 {
		d += time.Duration(i.rng.Int63n(int64(i.jitter)))
	}
	if i.bps > 0 && n > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / i.bps)
	}
	i.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (i *Injector) track(c *Conn) {
	i.mu.Lock()
	i.conns[c] = struct{}{}
	i.mu.Unlock()
}

func (i *Injector) untrack(c *Conn) {
	i.mu.Lock()
	delete(i.conns, c)
	i.mu.Unlock()
}

// Listen is net.Listen("tcp", addr) with every accepted connection
// wrapped into the injector's fault domain.
func (i *Injector) Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return i.Wrap(ln), nil
}

// Wrap places an existing listener into the injector's fault domain.
func (i *Injector) Wrap(ln net.Listener) *Listener {
	return &Listener{Listener: ln, inj: i}
}

// WrapConn places one established connection into the fault domain.
func (i *Injector) WrapConn(c net.Conn) *Conn {
	fc := newConn(c, i)
	i.track(fc)
	return fc
}

// Listener wraps accepted connections with the injector's faults.
type Listener struct {
	net.Listener
	inj *Injector
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// Conn is a net.Conn inside an injector's fault domain.
type Conn struct {
	net.Conn
	inj    *Injector
	mu     sync.Mutex // guards closed and rdDeadline
	closed bool
	// rdDeadline mirrors the read deadline set on the inner conn, so a
	// Read stalled by blackhole still honors it — the contract the netv3
	// keepalive's deadline enforcement depends on.
	rdDeadline time.Time
}

func newConn(c net.Conn, i *Injector) *Conn {
	return &Conn{Conn: c, inj: i}
}

// stall blocks while the fault domain is blackholed. It returns early
// with net.ErrClosed if the conn is closed, or os.ErrDeadlineExceeded if
// the (mirrored) read deadline passes — exactly what the inner conn
// would have returned had the bytes simply never arrived.
func (c *Conn) stall() error {
	for c.inj.Blackholed() {
		c.mu.Lock()
		closed, dl := c.closed, c.rdDeadline
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if !dl.IsZero() && !time.Now().Before(dl) {
			return os.ErrDeadlineExceeded
		}
		time.Sleep(pollInterval)
	}
	return nil
}

// Read implements net.Conn. While blackholed it blocks (deadline- and
// close-aware) instead of delivering; note that a Read already blocked
// inside the kernel when the blackhole starts will still complete if
// bytes were in flight — the blackhole guarantees silence for I/O
// started after it engages.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.stall(); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.inj.delay(n)
	}
	return n, err
}

// Write implements net.Conn. While blackholed the bytes are swallowed:
// the caller sees success, the peer sees nothing — the signature of a
// hung peer that TCP-level error handling cannot observe.
func (c *Conn) Write(b []byte) (int, error) {
	if c.inj.Blackholed() {
		return len(b), nil
	}
	c.inj.delay(len(b))
	return c.Conn.Write(b)
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.inj.untrack(c)
	return c.Conn.Close()
}

// SetReadDeadline implements net.Conn, mirroring the deadline so
// blackholed reads honor it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}
