// Command v3d is the real (TCP) V3 storage daemon: it exports one or more
// volumes over the V3 block protocol.
//
// Usage:
//
//	v3d -addr :9300 -size 256M                 # in-memory volume 1
//	v3d -addr :9300 -file /data/vol.img -size 1G -cache 4096
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/v3storage/v3/internal/netv3"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", ":9300", "listen address")
	sizeStr := flag.String("size", "64M", "volume size (supports K/M/G suffix)")
	file := flag.String("file", "", "back the volume with this file (default: memory)")
	cache := flag.Int("cache", 0, "server MQ cache size in 8K blocks (0 = off)")
	credits := flag.Int("credits", 64, "flow-control window per session")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil || size <= 0 {
		fmt.Fprintf(os.Stderr, "v3d: bad -size %q\n", *sizeStr)
		os.Exit(2)
	}
	cfg := netv3.DefaultServerConfig()
	cfg.Credits = *credits
	cfg.CacheBlocks = *cache
	cfg.Logger = log.New(os.Stderr, "v3d: ", log.LstdFlags)
	srv := netv3.NewServer(cfg)

	var store netv3.BlockStore
	if *file != "" {
		fs, err := netv3.NewFileStore(*file, size)
		if err != nil {
			log.Fatalf("v3d: %v", err)
		}
		store = fs
	} else {
		store = netv3.NewMemStore(size)
	}
	srv.AddVolume(1, store)

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("v3d: %v", err)
	}
	log.Printf("v3d: serving volume 1 (%d bytes) on %s", size, bound)
	if err := srv.Serve(); err != nil {
		log.Fatalf("v3d: %v", err)
	}
}
