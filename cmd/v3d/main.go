// Command v3d is the real (TCP) V3 storage daemon: it exports one or more
// volumes over the V3 block protocol.
//
// Usage:
//
//	v3d -addr :9300 -size 256M                 # in-memory volume 1
//	v3d -addr :9300 -file /data/vol.img -size 1G -cache 4096
//	v3d -addr :9300 -cache 4096 -shards 32 -stats 10s
//	v3d -addr :9300 -file /data/vol.img -size 1G -cache 4096 -workers 8
//	v3d -addr :9300 -cache 4096 -workers 8 -nowritebehind -noprefetch
//	v3d -addr :9300 -file /data/vol.img -size 1G -diskq -sqdepth 64
//	v3d -addr :9300 -schedworkers 8 -admitlimit 512 -maxstreams 10000
//	v3d -addr :9300 -metrics :9400             # Prometheus text + JSON snapshot
//	v3d -addr :9300 -metrics :9400 -pprof      # + /debug/pprof/ profiles
//	v3d -addr :9300 -metrics :9400             # /debug/flightrec is always there
//	v3d -addr :9300 -nopool -nobatch           # seed-equivalent baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", ":9300", "listen address")
	sizeStr := flag.String("size", "64M", "volume size (supports K/M/G suffix)")
	file := flag.String("file", "", "back the volume with this file (default: memory)")
	cache := flag.Int("cache", 0, "server MQ cache size in 8K blocks (0 = off)")
	shards := flag.Int("shards", 0, "cache shard count (0 = default, 1 = single lock)")
	credits := flag.Int("credits", 64, "flow-control window per session")
	noPool := flag.Bool("nopool", false, "disable buffer pooling (allocate per request)")
	noBatch := flag.Bool("nobatch", false, "disable response batching (flush per response)")
	workers := flag.Int("workers", 0, "disk worker goroutines per volume (0 = synchronous inline I/O)")
	diskQ := flag.Bool("diskq", false, "batched submission/completion disk backend (io_uring on Linux file stores, goroutine pool otherwise); supersedes -workers for dispatch")
	sqDepth := flag.Int("sqdepth", 0, "disk-queue submission depth with -diskq (0 = 64)")
	noWriteBehind := flag.Bool("nowritebehind", false, "disable write-behind destaging (ack after store write)")
	noPrefetch := flag.Bool("noprefetch", false, "disable sequential read-ahead")
	dirtyMax := flag.Int("dirtymax", 0, "dirty-block high-watermark before write-through fallback (0 = cache/2)")
	schedWorkers := flag.Int("schedworkers", 0, "shared scheduler worker pool with QoS lanes and admission control (0 = off; supersedes -workers/-diskq for dispatch)")
	admitLimit := flag.Int("admitlimit", 0, "foreground queue depth before admission control sheds (0 = schedworkers*256)")
	maxStreams := flag.Int("maxstreams", 0, "logical streams allowed per connection (0 = 65535)")
	stats := flag.Duration("stats", 0, "log served/cache/pool counters at this interval (0 = off)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text and JSON metrics on this address (e.g. :9400; empty = off)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/ on the -metrics address")
	noTrace := flag.Bool("notrace", false, "do not offer the trace feature bit (clients fall back to client-only stage traces)")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil || size <= 0 {
		fmt.Fprintf(os.Stderr, "v3d: bad -size %q\n", *sizeStr)
		os.Exit(2)
	}
	cfg := netv3.DefaultServerConfig()
	cfg.Credits = *credits
	cfg.CacheBlocks = *cache
	cfg.CacheShards = *shards
	cfg.NoPool = *noPool
	cfg.NoBatch = *noBatch
	cfg.DiskWorkers = *workers
	cfg.DiskQ = *diskQ
	cfg.SQDepth = *sqDepth
	cfg.NoWriteBehind = *noWriteBehind
	cfg.NoPrefetch = *noPrefetch
	cfg.DirtyHighWater = *dirtyMax
	cfg.SchedWorkers = *schedWorkers
	cfg.AdmitLimit = *admitLimit
	cfg.MaxStreams = *maxStreams
	cfg.Logger = log.New(os.Stderr, "v3d: ", log.LstdFlags)
	cfg.NoTrace = *noTrace
	var reg *obs.Registry
	if *metricsAddr != "" || *stats > 0 {
		reg = obs.New()
	}
	cfg.Metrics = reg
	// The flight recorder is always on: a fixed-size ring of recent
	// events, readable at /debug/flightrec, on SIGQUIT, and frozen
	// automatically around sheds and backend trips.
	flight := obs.NewFlight(0, 0)
	cfg.Flight = flight
	srv := netv3.NewServer(cfg)

	var store netv3.BlockStore
	if *file != "" {
		fs, err := netv3.NewFileStore(*file, size)
		if err != nil {
			log.Fatalf("v3d: %v", err)
		}
		store = fs
	} else {
		store = netv3.NewMemStore(size)
	}
	srv.AddVolume(1, store)

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("v3d: %v", err)
	}
	log.Printf("v3d: serving volume 1 (%d bytes) on %s", size, bound)

	// done is closed once Serve returns so the stats ticker goroutine
	// exits instead of leaking (time.Tick can never be stopped).
	done := make(chan struct{})
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg)) // any path except the debug tree: metrics, as before
		mux.Handle("/debug/flightrec", obs.FlightHandler(flight))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			log.Printf("v3d: metrics on http://%s/metrics (add ?format=json for the snapshot)", *metricsAddr)
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("v3d: metrics server: %v", err)
			}
		}()
		go func() {
			<-done
			msrv.Close()
		}()
	}
	if *stats > 0 {
		go func() {
			t := time.NewTicker(*stats)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
				}
				snap := reg.Snapshot()
				line, err := json.Marshal(snap)
				if err != nil {
					log.Printf("v3d: stats snapshot: %v", err)
					continue
				}
				log.Printf("v3d: stats %s", line)
			}
		}()
	}
	// SIGINT/SIGTERM stop the server cleanly so deferred destage passes
	// run and the stats/metrics goroutines wind down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("v3d: %v; shutting down", s)
		srv.Close()
	}()
	// SIGQUIT dumps the flight recorder to stderr and keeps serving —
	// the no-profiler-attached escape hatch when the daemon misbehaves.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			flight.Dump("SIGQUIT").WriteText(os.Stderr)
		}
	}()
	err = srv.Serve()
	close(done)
	if err != nil {
		log.Fatalf("v3d: %v", err)
	}
}
