// Command v3cli is a client for a v3d storage daemon: single reads and
// writes plus a small throughput/latency bench mode.
//
// Usage:
//
//	v3cli -addr host:9300 write 4096 "hello"
//	v3cli -addr host:9300 read 4096 5
//	v3cli -addr host:9300 flush
//	v3cli -addr host:9300 bench -n 1000 -size 8192 -depth 8
//	v3cli -addr host:9300 bench -n 100000 -size 8192 -window 16   # async pipeline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/v3storage/v3/internal/netv3"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9300", "v3d address")
	vol := flag.Uint("vol", 1, "volume id")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "v3cli: need a command: read | write | flush | bench")
		os.Exit(2)
	}
	c, err := netv3.Dial(*addr, netv3.DefaultClientConfig())
	if err != nil {
		log.Fatalf("v3cli: %v", err)
	}
	defer c.Close()
	v := uint32(*vol)

	switch args[0] {
	case "read":
		if len(args) != 3 {
			log.Fatal("v3cli: read <offset> <length>")
		}
		off, _ := strconv.ParseInt(args[1], 10, 64)
		n, _ := strconv.Atoi(args[2])
		buf := make([]byte, n)
		if err := c.Read(v, off, buf); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		os.Stdout.Write(buf)
		fmt.Println()
	case "write":
		if len(args) != 3 {
			log.Fatal("v3cli: write <offset> <data>")
		}
		off, _ := strconv.ParseInt(args[1], 10, 64)
		if err := c.Write(v, off, []byte(args[2])); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		fmt.Println("ok")
	case "flush":
		if err := c.Flush(v); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		fmt.Println("ok")
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fs.Int("n", 1000, "I/Os")
		size := fs.Int("size", 8192, "request size")
		depth := fs.Int("depth", 8, "concurrent streams")
		window := fs.Int("window", 0, "async pipeline depth (0 = sync goroutine bench)")
		writes := fs.Bool("writes", false, "write instead of read")
		_ = fs.Parse(args[1:])
		if *window > 0 {
			runAsyncBench(c, v, *n, *size, *window, *writes)
		} else {
			runBench(c, v, *n, *size, *depth, *writes)
		}
	default:
		log.Fatalf("v3cli: unknown command %q", args[0])
	}
}

// runAsyncBench drives the async API from one goroutine, keeping up to
// `window` requests in flight — the pipelined submission pattern the
// paper's cDSA clients use, and the fastest way to use netv3 batching.
func runAsyncBench(c *netv3.Client, vol uint32, n, size, window int, writes bool) {
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*netv3.Pending, window)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		s := i % window
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				log.Fatalf("v3cli: %v", err)
			}
		}
		off := int64(i*size) % (1 << 20)
		var h *netv3.Pending
		var err error
		if writes {
			h, err = c.WriteAsync(vol, off, bufs[s])
		} else {
			h, err = c.ReadAsync(vol, off, bufs[s])
		}
		if err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		handles[s] = h
	}
	for _, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				log.Fatalf("v3cli: %v", err)
			}
		}
	}
	elapsed := time.Since(t0)
	fmt.Printf("%d I/Os of %d bytes, window %d: %.0f ops/s, %.1f MB/s\n",
		n, size, window,
		float64(n)/elapsed.Seconds(),
		float64(n)*float64(size)/elapsed.Seconds()/1e6)
}

func runBench(c *netv3.Client, vol uint32, n, size, depth int, writes bool) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total time.Duration
	count := 0
	t0 := time.Now()
	per := n / depth
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < per; i++ {
				off := int64((d*per+i)*size) % (1 << 20)
				s := time.Now()
				var err error
				if writes {
					err = c.Write(vol, off, buf)
				} else {
					err = c.Read(vol, off, buf)
				}
				if err != nil {
					log.Printf("v3cli: %v", err)
					return
				}
				mu.Lock()
				total += time.Since(s)
				count++
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if count == 0 {
		log.Fatal("v3cli: no I/Os completed")
	}
	fmt.Printf("%d I/Os of %d bytes, depth %d: %.1f MB/s, mean latency %v\n",
		count, size, depth,
		float64(count)*float64(size)/elapsed.Seconds()/1e6,
		total/time.Duration(count))
}
