// Command v3cli is a client for v3d storage daemons: single reads and
// writes plus a small throughput/latency bench mode. Pointed at one
// server with -addr it speaks netv3 directly; pointed at several with
// -servers it assembles them into one logical cluster volume (the V3
// "volume vault"), striped for throughput or mirrored for availability.
//
// Usage:
//
//	v3cli -addr host:9300 write 4096 "hello"
//	v3cli -addr host:9300 read 4096 5
//	v3cli -addr host:9300 flush
//	v3cli -addr host:9300 bench -n 1000 -size 8192 -depth 8
//	v3cli -addr host:9300 bench -n 100000 -size 8192 -window 16   # async pipeline
//	v3cli -addr host:9300 bench -n 100000 -streams 1000           # 1000 logical clients, one conn
//	v3cli -addr host:9300 status                                  # session + stream counters
//	v3cli -addr host:9300 breakdown -n 20000 -size 8192 -window 16
//	v3cli -addr host:9300 trace -n 20000 -size 8192 -window 16            # merged cross-tier stage table
//	v3cli -addr host:9300 trace -metrics host:9400                        # + per-lane/per-tenant sched breakdown
//
//	v3cli -servers a:9300,b:9300 -stripe -size 67108864 bench -n 100000
//	v3cli -servers a:9300,b:9300 -mirror -size 67108864 write 4096 "hello"
//	v3cli -servers a:9300,b:9300 -mirror -size 67108864 status
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/vvault"
)

// blockIO is the slice of the client surface the subcommands need; both
// a single netv3 session and a cluster vault provide it.
type blockIO interface {
	Read(off int64, buf []byte) error
	Write(off int64, data []byte) error
	Flush() error
}

// singleIO adapts one netv3 client to blockIO.
type singleIO struct {
	c       *netv3.Client
	vol     uint32
	timeout time.Duration
}

// ctx returns the per-request bound: Background when -iotimeout is 0.
// The context-aware client calls cancel the request on expiry, so the
// CLI's buffers are reusable the moment an error returns.
func (s singleIO) ctx() (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), s.timeout)
}

func (s singleIO) Read(off int64, buf []byte) error {
	ctx, cancel := s.ctx()
	defer cancel()
	return s.c.ReadCtx(ctx, s.vol, off, buf)
}

func (s singleIO) Write(off int64, data []byte) error {
	ctx, cancel := s.ctx()
	defer cancel()
	return s.c.WriteCtx(ctx, s.vol, off, data)
}

func (s singleIO) Flush() error {
	ctx, cancel := s.ctx()
	defer cancel()
	return s.c.FlushCtx(ctx, s.vol)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9300", "v3d address (single-server mode)")
	servers := flag.String("servers", "", "comma-separated v3d addresses (cluster mode)")
	mirror := flag.Bool("mirror", false, "cluster mode: mirror the volume on every server (RAID-1)")
	stripe := flag.Bool("stripe", false, "cluster mode: stripe the volume across the servers (RAID-0)")
	stripeSize := flag.Int64("stripesize", 64<<10, "cluster stripe unit in bytes")
	memberSize := flag.Int64("size", 64<<20, "cluster mode: bytes used on each server")
	vol := flag.Uint("vol", 1, "volume id")
	keepalive := flag.Duration("keepalive", netv3.DefaultClientConfig().KeepaliveInterval,
		"hung-peer probe interval on idle links (0 disables); a silent server is declared dead within 2x this")
	iotimeout := flag.Duration("iotimeout", 0,
		"per-request bound (0 = wait forever); an expired request is canceled and its buffer returned")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "v3cli: need a command: read | write | flush | status | bench | breakdown | trace")
		os.Exit(2)
	}

	var io blockIO
	var vault *vvault.Vault
	var client *netv3.Client
	var clientReg *obs.Registry
	if *servers != "" {
		if *mirror == *stripe {
			log.Fatal("v3cli: cluster mode needs exactly one of -mirror or -stripe")
		}
		mode := vvault.ModeStripe
		if *mirror {
			mode = vvault.ModeMirror
		}
		cfg := vvault.DefaultConfig(mode)
		cfg.Volume = uint32(*vol)
		cfg.MemberSize = *memberSize
		cfg.StripeSize = *stripeSize
		cfg.Client.KeepaliveInterval = *keepalive
		if *iotimeout > 0 {
			cfg.IOTimeout = *iotimeout
		}
		cfg.Logger = log.New(os.Stderr, "", log.LstdFlags)
		v, err := vvault.Open(strings.Split(*servers, ","), cfg)
		if err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		defer v.Close()
		vault, io = v, v
	} else {
		ccfg := netv3.DefaultClientConfig()
		ccfg.KeepaliveInterval = *keepalive
		// The breakdown and trace commands need the client's stage trace
		// enabled from the first request, so the registry attaches
		// before Dial.
		var reg *obs.Registry
		if args[0] == "breakdown" || args[0] == "trace" {
			reg = obs.New()
			ccfg.Metrics = reg
		}
		c, err := netv3.Dial(*addr, ccfg)
		if err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		defer c.Close()
		client, clientReg, io = c, reg, singleIO{c, uint32(*vol), *iotimeout}
	}

	switch args[0] {
	case "read":
		if len(args) != 3 {
			log.Fatal("v3cli: read <offset> <length>")
		}
		off, _ := strconv.ParseInt(args[1], 10, 64)
		n, _ := strconv.Atoi(args[2])
		buf := make([]byte, n)
		if err := io.Read(off, buf); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		os.Stdout.Write(buf)
		fmt.Println()
	case "write":
		if len(args) != 3 {
			log.Fatal("v3cli: write <offset> <data>")
		}
		off, _ := strconv.ParseInt(args[1], 10, 64)
		if err := io.Write(off, []byte(args[2])); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		fmt.Println("ok")
	case "flush":
		if err := io.Flush(); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		fmt.Println("ok")
	case "status":
		if vault != nil {
			printStatus(vault)
		} else {
			printClientStatus(client)
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fs.Int("n", 1000, "I/Os")
		size := fs.Int("size", 8192, "request size")
		depth := fs.Int("depth", 8, "concurrent streams")
		window := fs.Int("window", 0, "async pipeline depth (single-server mode only; 0 = sync goroutine bench)")
		nStreams := fs.Int("streams", 0, "multiplex the load over this many logical streams on one connection (single-server mode only)")
		background := fs.Bool("background", false, "with -streams: ride the server's background QoS lane")
		writes := fs.Bool("writes", false, "write instead of read")
		_ = fs.Parse(args[1:])
		region := int64(1 << 20)
		if vault != nil {
			region = vault.Size()
		}
		switch {
		case *nStreams > 0:
			if client == nil {
				log.Fatal("v3cli: -streams bench needs single-server mode (the vault multiplexes internally)")
			}
			runStreamBench(client, uint32(*vol), *n, *size, *nStreams, *background, *writes)
		case *window > 0:
			if client == nil {
				log.Fatal("v3cli: -window bench needs single-server mode (the vault pipelines internally)")
			}
			runAsyncBench(client, uint32(*vol), *n, *size, *window, *writes)
		default:
			runBench(io, *n, *size, *depth, region, *writes)
		}
	case "breakdown":
		if client == nil {
			log.Fatal("v3cli: breakdown needs single-server mode (-addr)")
		}
		fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
		n := fs.Int("n", 20000, "I/Os")
		size := fs.Int("size", 8192, "request size")
		window := fs.Int("window", 16, "async pipeline depth")
		writes := fs.Bool("writes", false, "write instead of read")
		_ = fs.Parse(args[1:])
		runBreakdown(client, clientReg, uint32(*vol), *n, *size, *window, *writes)
	case "trace":
		if client == nil {
			log.Fatal("v3cli: trace needs single-server mode (-addr)")
		}
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		n := fs.Int("n", 20000, "I/Os")
		size := fs.Int("size", 8192, "request size")
		window := fs.Int("window", 16, "async pipeline depth")
		writes := fs.Bool("writes", false, "write instead of read")
		metrics := fs.String("metrics", "", "server metrics address (host:9400) for per-lane and per-tenant scheduler breakdowns")
		_ = fs.Parse(args[1:])
		runTrace(client, clientReg, uint32(*vol), *n, *size, *window, *writes, *metrics)
	default:
		log.Fatalf("v3cli: unknown command %q", args[0])
	}
}

// runBreakdown drives the async-window workload with the client's stage
// trace enabled and prints the paper-style per-stage latency table. Each
// traced request's end-to-end time is also measured at the call site
// (submit → Wait return), so the table's stage-sum row can be checked
// against an independently measured mean over the same sampled
// population.
func runBreakdown(c *netv3.Client, reg *obs.Registry, vol uint32, n, size, window int, writes bool) {
	done, count, e2e := driveTraced(c, vol, n, size, window, writes)
	op := "reads"
	if writes {
		op = "writes"
	}
	fmt.Printf("%d %s of %d bytes, window %d (%d stage-traced)\n", done, op, size, window, count)
	rows := obs.Breakdown(reg, netv3.ClientStageDefs())
	fmt.Print(obs.FormatBreakdown(rows, float64(e2e.Nanoseconds())/float64(count)))
}

// driveTraced runs the async-window workload that breakdown and trace
// share, returning completions, the stage-traced subset's size, and the
// traced subset's summed caller-measured end-to-end time.
func driveTraced(c *netv3.Client, vol uint32, n, size, window int, writes bool) (done, count int, e2e time.Duration) {
	if window < 1 {
		window = 1
	}
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*netv3.Pending, window)
	starts := make([]time.Time, window)
	reap := func(s int) {
		if handles[s] == nil {
			return
		}
		if err := handles[s].Wait(); err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		if handles[s].Traced() {
			e2e += time.Since(starts[s])
			count++
		}
		done++
		handles[s] = nil
	}
	for i := 0; i < n; i++ {
		s := i % window
		reap(s)
		off := int64(i*size) % (1 << 20)
		starts[s] = time.Now()
		var h *netv3.Pending
		var err error
		if writes {
			h, err = c.WriteAsync(vol, off, bufs[s])
		} else {
			h, err = c.ReadAsync(vol, off, bufs[s])
		}
		if err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		handles[s] = h
	}
	for s := range handles {
		reap(s)
	}
	if count == 0 {
		log.Fatal("v3cli: no traced I/Os completed")
	}
	return done, count, e2e
}

// runTrace drives the traced workload and prints the merged cross-tier
// table: the client's six stages re-tiled so the opaque server interval
// splits into scheduler wait, server CPU, disk-queue wait, and device
// time reported by the server's span block, with the remainder as true
// network+kernel cost. Against a pre-trace server (or -notrace) the
// span columns read zero and the whole interval stays in net+kernel —
// same table, graceful fallback. With -metrics it also fetches the
// server registry and prints the per-lane and per-tenant scheduler
// breakdowns the spans are attributed by.
func runTrace(c *netv3.Client, reg *obs.Registry, vol uint32, n, size, window int, writes bool, metrics string) {
	done, count, e2e := driveTraced(c, vol, n, size, window, writes)
	op := "reads"
	if writes {
		op = "writes"
	}
	if c.TraceSupported() {
		fmt.Printf("%d %s of %d bytes, window %d (%d traced end-to-end)\n", done, op, size, window, count)
	} else {
		fmt.Printf("%d %s of %d bytes, window %d (%d client-traced; server has no trace support)\n",
			done, op, size, window, count)
	}
	rows := obs.Breakdown(reg, netv3.MergedStageDefs())
	fmt.Print(obs.FormatBreakdown(rows, float64(e2e.Nanoseconds())/float64(count)))
	if metrics != "" {
		printSchedBreakdown(metrics)
	}
}

// printSchedBreakdown fetches the server's metrics snapshot and renders
// the scheduler's per-lane counters and per-tenant queue depths.
func printSchedBreakdown(addr string) {
	url := "http://" + addr + "/metrics?format=json"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("v3cli: fetch %s: %v", url, err)
	}
	defer resp.Body.Close()
	var snap obs.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatalf("v3cli: decode %s: %v", url, err)
	}
	g := snap.Gauges
	fmt.Printf("\nserver scheduler (%s):\n", addr)
	for _, lane := range []string{"fg", "bg"} {
		line := fmt.Sprintf("  lane %-2s: queued=%d done=%d tenants=%d", lane,
			g["netv3_srv_sched_"+lane+"_queued"],
			g["netv3_srv_sched_"+lane+"_done_total"],
			g["netv3_srv_sched_"+lane+"_tenants"])
		if h, ok := snap.Hists["netv3_srv_sched_"+lane+"_wait_ns"]; ok && h.Count > 0 {
			line += fmt.Sprintf(" wait mean=%v p99=%v",
				time.Duration(int64(h.MeanNS)).Round(time.Microsecond),
				time.Duration(int64(h.P99NS)).Round(time.Microsecond))
		}
		fmt.Println(line)
	}
	fmt.Printf("  sheds=%d stride_fires=%d\n",
		g["netv3_srv_sched_shed_total"], g["netv3_srv_sched_stride_fires_total"])
	const tenantPrefix = "netv3_srv_sched_tenant_queued"
	var tenants []string
	for k := range g {
		if strings.HasPrefix(k, tenantPrefix+"{") {
			tenants = append(tenants, k)
		}
	}
	sort.Strings(tenants)
	for _, k := range tenants {
		fmt.Printf("  tenant %s queued=%d\n", strings.TrimPrefix(k, tenantPrefix), g[k])
	}
}

// printClientStatus renders one session's negotiated capabilities and
// live counters — the single-server face of `status`.
func printClientStatus(c *netv3.Client) {
	st := c.Stats()
	fmt.Printf("streams_supported=%v max_streams=%d\n", c.StreamsSupported(), c.MaxStreams())
	fmt.Printf("streams_open=%d streams_opened=%d in_flight=%d reconnects=%d retries=%d\n",
		st.StreamsOpen, st.StreamsOpened, st.InFlight, st.Reconnects, st.Retries)
}

// printStatus renders the vault's per-backend health table plus, in
// mirror mode, the replication log's sequence positions: each replica's
// applied cursor and flush watermark against the log head, and the
// log's own depth/truncation state.
func printStatus(v *vvault.Vault) {
	fmt.Printf("mode=%s size=%d\n", v.Mode(), v.Size())
	mirror := v.Mode() == vvault.ModeMirror
	for i, st := range v.Status() {
		fmt.Printf("backend %d %-21s %-7s consec=%d trips=%d reconnects=%d",
			i, st.Addr, st.State, st.Consecutive, st.Trips, st.Reconnects)
		if st.LastProbeRTT > 0 {
			fmt.Printf(" probe_rtt=%v", st.LastProbeRTT)
		}
		if st.DataStream != 0 {
			fmt.Printf(" data_stream=%d credits=%d", st.DataStream, st.StreamCredits)
		}
		if st.ResyncStream != 0 {
			fmt.Printf(" resync_stream=%d", st.ResyncStream)
		}
		if mirror {
			fmt.Printf(" log_cursor=%d watermark=%d", st.LogCursor, st.LogWatermark)
			if st.UnflushedBytes > 0 {
				fmt.Printf(" unflushed=%dB", st.UnflushedBytes)
			}
		}
		if st.DirtyBytes > 0 {
			fmt.Printf(" resync_remaining=%dB/%d ranges", st.DirtyBytes, st.DirtyRanges)
		}
		fmt.Println()
	}
	if mirror {
		ls := v.LogStatus()
		fmt.Printf("repl_log head=%d base=%d records=%d folded=%d fallbacks=%d\n",
			ls.Head, ls.Base, ls.Records, ls.Folded, ls.Fallbacks)
		for name, cur := range v.FeedCursors() {
			fmt.Printf("feed %-21s cursor=%d lag=%d\n", name, cur, ls.Head-cur)
		}
	}
	s := v.Stats()
	fmt.Printf("degraded_reads=%d degraded_writes=%d degraded_seconds=%.1f resyncs=%d resynced_bytes=%d resync_replayed_bytes=%d resync_fallbacks=%d\n",
		s.DegradedReads, s.DegradedWrites, s.DegradedSeconds, s.Resyncs, s.ResyncedBytes, s.ResyncReplayedBytes, s.ResyncFallbacks)
}

// latColumns renders a histogram snapshot as the bench paths' shared
// latency tail columns. Every bench runner records per-op latency into
// an obs.Hist — the same lock-free histogram the server and client
// metrics use — so the CLI's numbers and the obs pipeline's numbers are
// the same kind of estimate (log2 buckets, exact mean).
func latColumns(s obs.HistSnapshot) string {
	q := func(p float64) time.Duration {
		return time.Duration(int64(s.Quantile(p))).Round(time.Microsecond)
	}
	return fmt.Sprintf("mean %v, p50 %v, p95 %v, p99 %v",
		time.Duration(int64(s.Mean())).Round(time.Microsecond), q(0.50), q(0.95), q(0.99))
}

// runStreamBench multiplexes the load over nStreams logical streams on
// the single wire connection — the many-sessions-per-VI shape. Each
// stream is one synchronous logical client; the per-op latency
// distribution (p50/p95/p99) is the point, since a flat tail at high
// stream counts is what the multiplexing layer promises. Admission
// sheds are counted, not fatal.
func runStreamBench(c *netv3.Client, vol uint32, n, size, nStreams int, background, writes bool) {
	if !c.StreamsSupported() {
		log.Fatal("v3cli: server did not negotiate streams")
	}
	streams := make([]*netv3.Stream, nStreams)
	for i := range streams {
		st, err := c.OpenStream(netv3.StreamConfig{Credits: 4, Background: background})
		if err != nil {
			log.Fatalf("v3cli: open stream %d: %v", i, err)
		}
		streams[i] = st
	}
	per := n / nStreams
	if per == 0 {
		per = 1
	}
	var lat obs.Hist
	var shed atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *netv3.Stream) {
			defer wg.Done()
			buf := make([]byte, size)
			for k := 0; k < per; k++ {
				off := int64((i*per+k)*size) % (1 << 20)
				s := time.Now()
				var err error
				if writes {
					err = st.Write(vol, off, buf)
				} else {
					err = st.Read(vol, off, buf)
				}
				if err != nil {
					if errors.Is(err, netv3.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					log.Printf("v3cli: stream %d: %v", i, err)
					return
				}
				lat.Observe(time.Since(s).Nanoseconds())
			}
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, st := range streams {
		_ = st.Close()
	}
	snap := lat.Snapshot()
	if snap.Count() == 0 {
		log.Fatal("v3cli: no I/Os completed")
	}
	fmt.Printf("%d I/Os of %d bytes over %d streams (1 conn): %.0f ops/s, %s, shed %d\n",
		snap.Count(), size, nStreams,
		float64(snap.Count())/elapsed.Seconds(),
		latColumns(snap), shed.Load())
}

// runAsyncBench drives the async API from one goroutine, keeping up to
// `window` requests in flight — the pipelined submission pattern the
// paper's cDSA clients use, and the fastest way to use netv3 batching.
func runAsyncBench(c *netv3.Client, vol uint32, n, size, window int, writes bool) {
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*netv3.Pending, window)
	starts := make([]time.Time, window)
	var lat obs.Hist
	t0 := time.Now()
	for i := 0; i < n; i++ {
		s := i % window
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				log.Fatalf("v3cli: %v", err)
			}
			lat.Observe(time.Since(starts[s]).Nanoseconds())
		}
		off := int64(i*size) % (1 << 20)
		starts[s] = time.Now()
		var h *netv3.Pending
		var err error
		if writes {
			h, err = c.WriteAsync(vol, off, bufs[s])
		} else {
			h, err = c.ReadAsync(vol, off, bufs[s])
		}
		if err != nil {
			log.Fatalf("v3cli: %v", err)
		}
		handles[s] = h
	}
	for s, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				log.Fatalf("v3cli: %v", err)
			}
			lat.Observe(time.Since(starts[s]).Nanoseconds())
		}
	}
	elapsed := time.Since(t0)
	fmt.Printf("%d I/Os of %d bytes, window %d: %.0f ops/s, %.1f MB/s, %s\n",
		n, size, window,
		float64(n)/elapsed.Seconds(),
		float64(n)*float64(size)/elapsed.Seconds()/1e6,
		latColumns(lat.Snapshot()))
}

// runBench fans `depth` synchronous streams over the target; against a
// vault each stream's requests pipeline through the async extent fan-out
// underneath, so depth is the cluster's outstanding-I/O count.
func runBench(io blockIO, n, size, depth int, region int64, writes bool) {
	var wg sync.WaitGroup
	var lat obs.Hist
	t0 := time.Now()
	per := n / depth
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < per; i++ {
				off := int64((d*per+i)*size) % (region - int64(size))
				off -= off % int64(size)
				s := time.Now()
				var err error
				if writes {
					err = io.Write(off, buf)
				} else {
					err = io.Read(off, buf)
				}
				if err != nil {
					log.Printf("v3cli: %v", err)
					return
				}
				lat.Observe(time.Since(s).Nanoseconds())
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	snap := lat.Snapshot()
	if snap.Count() == 0 {
		log.Fatal("v3cli: no I/Os completed")
	}
	fmt.Printf("%d I/Os of %d bytes, depth %d: %.1f MB/s, %s\n",
		snap.Count(), size, depth,
		float64(snap.Count())*float64(size)/elapsed.Seconds()/1e6,
		latColumns(snap))
}
