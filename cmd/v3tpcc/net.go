package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/workload"
)

// netOptions configures the real-stack TPC-C run (v3tpcc -net): the
// wall-clock engine from internal/workload over live v3d servers,
// in-process by default or external via -servers.
type netOptions struct {
	servers    string // comma-separated external v3d addresses
	nodes      int    // in-process servers when -servers is empty
	mirror     bool   // vault RAID-1 instead of RAID-0 (multi-node)
	clients    int    // independent client engines (own session each)
	terminals  int    // terminals per client
	warehouses int    // warehouses per client
	wl         string // workload preset: tpcc|uniform|zipf|scan|bursty
	rate       float64
	warmup     time.Duration
	measure    time.Duration
	quick      bool
}

// wlPreset maps a -wl name to the engine's mix, distribution, and
// arrival process. The synthetic presets are the bench-tpcc rows.
func wlPreset(name string, rate float64) ([]workload.TxKind, workload.DistSpec, workload.ArrivalSpec, error) {
	switch name {
	case "tpcc":
		return workload.TPCCKinds(), workload.DistSpec{Kind: workload.DistUniform}, workload.ArrivalSpec{}, nil
	case "uniform":
		return workload.SyntheticKind("uniform", 8, 2, 512), workload.DistSpec{Kind: workload.DistUniform}, workload.ArrivalSpec{}, nil
	case "zipf":
		return workload.SyntheticKind("zipf", 8, 2, 512), workload.DistSpec{Kind: workload.DistZipf}, workload.ArrivalSpec{}, nil
	case "scan":
		return workload.SyntheticKind("scan", 16, 0, 0), workload.DistSpec{Kind: workload.DistSeq}, workload.ArrivalSpec{}, nil
	case "bursty":
		if rate <= 0 {
			rate = 2000
		}
		return workload.SyntheticKind("bursty", 8, 2, 512), workload.DistSpec{Kind: workload.DistUniform},
			workload.ArrivalSpec{Kind: workload.ArrivalBursty, Rate: rate}, nil
	}
	return nil, workload.DistSpec{}, workload.ArrivalSpec{}, fmt.Errorf("unknown workload %q (tpcc|uniform|zipf|scan|bursty)", name)
}

// runNet executes the real-stack run and prints the tpmC report plus
// the per-stage latency breakdown with its accounting check.
func runNet(o netOptions) error {
	if o.quick {
		if o.warmup == 0 {
			o.warmup = 150 * time.Millisecond
		}
		if o.measure == 0 {
			o.measure = 500 * time.Millisecond
		}
	}
	if o.warmup == 0 {
		o.warmup = time.Second
	}
	if o.measure == 0 {
		o.measure = 3 * time.Second
	}
	if o.clients <= 0 {
		o.clients = 1
	}
	if o.terminals <= 0 {
		o.terminals = 8
	}
	if o.warehouses <= 0 {
		o.warehouses = 2
	}
	kinds, dist, arrival, err := wlPreset(o.wl, o.rate)
	if err != nil {
		return err
	}

	// Size one shared volume layout: the log region plus every client's
	// warehouse slice, rounded up to the 64 KB stripe unit.
	const logSlots, pageSize = 64, 8192
	totalWH := int64(o.clients * o.warehouses)
	need := int64(logSlots)*(64<<10) + totalWH*workload.PagesPerWarehouse*pageSize
	roundUp := func(v, to int64) int64 { return (v + to - 1) / to * to }

	var addrs []string
	if o.servers != "" {
		addrs = strings.Split(o.servers, ",")
	} else {
		if o.nodes <= 0 {
			o.nodes = 1
		}
		memberSize := roundUp(need, 64<<10)
		if o.nodes > 1 && !o.mirror {
			memberSize = roundUp(need/int64(o.nodes)+(64<<10), 64<<10)
		}
		cluster, err := workload.StartCluster(o.nodes, memberSize, netv3.DefaultServerConfig())
		if err != nil {
			return err
		}
		defer cluster.Close()
		addrs = cluster.Addrs()
		fmt.Printf("in-process cluster: %d node(s), %d MB/volume\n", o.nodes, memberSize>>20)
	}

	memberSize := roundUp(need, 64<<10)
	if len(addrs) > 1 && !o.mirror {
		memberSize = roundUp(need/int64(len(addrs))+(64<<10), 64<<10)
	}

	// All clients share one stage registry and one e2e histogram, so the
	// breakdown and its accounting check cover the whole run.
	reg := obs.New()
	e2e := &obs.Hist{}

	type clientRun struct {
		res *workload.Result
		err error
	}
	runs := make([]clientRun, o.clients)
	var wg sync.WaitGroup
	for k := 0; k < o.clients; k++ {
		store, closeStore, err := workload.OpenStack(workload.StackConfig{
			Addrs:   addrs,
			Mirror:  o.mirror,
			VolSize: memberSize,
			Reg:     reg,
			E2E:     e2e,
		})
		if err != nil {
			return fmt.Errorf("client %d: %w", k, err)
		}
		defer closeStore()
		eng, err := workload.New(workload.Config{
			Store:         store,
			Kinds:         kinds,
			Dist:          dist,
			Arrival:       arrival,
			Terminals:     o.terminals,
			Warehouses:    o.warehouses,
			WarehouseBase: k * o.warehouses,
			Seed:          1 + int64(k)*997,
			E2E:           e2e,
		})
		if err != nil {
			return fmt.Errorf("client %d: %w", k, err)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			res, err := eng.Run(o.warmup, o.measure)
			runs[k] = clientRun{res, err}
		}(k)
	}
	wg.Wait()

	var merged *workload.Result
	for k, r := range runs {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", k, r.err)
		}
		if merged == nil {
			merged = r.res
		} else {
			merged.Merge(r.res)
		}
	}

	mode := "netv3"
	if len(addrs) > 1 {
		mode = fmt.Sprintf("vvault stripe x%d", len(addrs))
		if o.mirror {
			mode = fmt.Sprintf("vvault mirror x%d", len(addrs))
		}
	}
	fmt.Printf("workload %s over %s: %d client(s) x %d terminal(s) x %d warehouse(s)\n",
		o.wl, mode, o.clients, o.terminals, o.warehouses)
	fmt.Print(merged.Format())

	// The merged table re-tiles the client trace's opaque server interval
	// into the server's own span columns (sched wait, CPU, disk-queue
	// wait, device) when the peers negotiated tracing; against pre-trace
	// peers the extra columns read zero and the total still tiles, so
	// the accounting check below is tiling-independent.
	rows := obs.Breakdown(reg, netv3.MergedStageDefs())
	fmt.Println("\nper-stage latency (sampled cross-tier trace):")
	fmt.Print(obs.FormatBreakdown(rows, merged.E2E.Mean()))
	if dev := workload.BreakdownDeviation(rows, merged.E2E); dev > 0.10 {
		fmt.Printf("WARNING: stage sum deviates %.1f%% from measured e2e (accounting target <= 10%%)\n", 100*dev)
	}
	return nil
}
