// Command v3tpcc regenerates the paper's TPC-C experiments (Section 6,
// Figures 9-14): optimization ablations, normalized transaction rates,
// CPU-utilization breakdowns, and the disk-count sweep.
//
// Usage:
//
//	v3tpcc             # all figures (long: many multi-second simulations)
//	v3tpcc -fig 10     # one figure
//	v3tpcc -quick      # shorter warmup/measurement windows
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/v3storage/v3/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (9-14); 0 runs all")
	quick := flag.Bool("quick", false, "shorter simulation windows")
	flag.Parse()
	o := bench.Options{Quick: *quick}

	runners := map[int]func() *bench.Table{
		9:  func() *bench.Table { return bench.FigAblation(bench.LargeSetup(), o) },
		10: func() *bench.Table { return bench.FigTpmC(bench.LargeSetup(), o) },
		11: func() *bench.Table { return bench.FigBreakdown(bench.LargeSetup(), o) },
		12: func() *bench.Table { return bench.FigAblation(bench.MidSizeSetup(), o) },
		13: func() *bench.Table { return bench.Fig13Sweep(o) },
		14: func() *bench.Table { return bench.FigBreakdown(bench.MidSizeSetup(), o) },
	}
	if *fig != 0 {
		r, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "v3tpcc: no such figure %d (9-14)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(r())
		return
	}
	for i := 9; i <= 14; i++ {
		fmt.Println(runners[i]())
	}
}
