// Command v3tpcc regenerates the paper's TPC-C experiments (Section 6,
// Figures 9-14) and, with -net, runs the real-stack equivalent: the
// wall-clock transaction engine from internal/workload over live v3d
// servers (in-process by default, external via -servers), reporting
// tpmC, per-transaction-type latency, and the sampled per-stage
// breakdown with its accounting check.
//
// Usage:
//
//	v3tpcc             # all simulated figures (long)
//	v3tpcc -fig 10     # one simulated figure
//	v3tpcc -quick      # shorter warmup/measurement windows
//
//	v3tpcc -net                          # TPC-C over one in-process v3d server
//	v3tpcc -net -nodes 2                 # ... over a striped x2 vvault cluster
//	v3tpcc -net -nodes 2 -mirror         # ... mirrored
//	v3tpcc -net -servers host:port,...   # ... over external servers
//	v3tpcc -net -wl zipf                 # synthetic presets: uniform|zipf|scan|bursty
//	v3tpcc -net -clients 2 -warehouses 4 # multi-client, partitioned warehouses
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/v3storage/v3/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (9-14); 0 runs all")
	quick := flag.Bool("quick", false, "shorter simulation/measurement windows")

	net := flag.Bool("net", false, "run the real-stack workload instead of the simulated figures")
	var o netOptions
	flag.StringVar(&o.servers, "servers", "", "comma-separated external v3d addresses (default: in-process)")
	flag.IntVar(&o.nodes, "nodes", 1, "in-process servers to start when -servers is empty")
	flag.BoolVar(&o.mirror, "mirror", false, "mirror (RAID-1) across nodes instead of striping")
	flag.IntVar(&o.clients, "clients", 1, "independent client engines, each with its own session and warehouse slice")
	flag.IntVar(&o.terminals, "terminals", 8, "terminals per client")
	flag.IntVar(&o.warehouses, "warehouses", 2, "warehouses per client")
	flag.StringVar(&o.wl, "wl", "tpcc", "workload preset: tpcc|uniform|zipf|scan|bursty")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in tx/s (bursty preset; 0 = default)")
	flag.DurationVar(&o.warmup, "warmup", 0, "warmup window before measuring (0 = preset default)")
	flag.DurationVar(&o.measure, "measure", 0, "measurement window (0 = preset default)")
	flag.Parse()

	if *net {
		o.quick = *quick
		if err := runNet(o); err != nil {
			fmt.Fprintf(os.Stderr, "v3tpcc: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ob := bench.Options{Quick: *quick}
	runners := map[int]func() *bench.Table{
		9:  func() *bench.Table { return bench.FigAblation(bench.LargeSetup(), ob) },
		10: func() *bench.Table { return bench.FigTpmC(bench.LargeSetup(), ob) },
		11: func() *bench.Table { return bench.FigBreakdown(bench.LargeSetup(), ob) },
		12: func() *bench.Table { return bench.FigAblation(bench.MidSizeSetup(), ob) },
		13: func() *bench.Table { return bench.Fig13Sweep(ob) },
		14: func() *bench.Table { return bench.FigBreakdown(bench.MidSizeSetup(), ob) },
	}
	if *fig != 0 {
		r, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "v3tpcc: no such figure %d (9-14)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(r())
		return
	}
	for i := 9; i <= 14; i++ {
		fmt.Println(runners[i]())
	}
}
