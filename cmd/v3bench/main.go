// Command v3bench regenerates the paper's micro-benchmark figures
// (Section 5, Figures 3-8) and prints Tables 1 and 2.
//
// Usage:
//
//	v3bench            # all figures, full iteration counts
//	v3bench -fig 3     # one figure
//	v3bench -quick     # fewer iterations (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/v3storage/v3/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (3-8); 0 runs all, 1/2 print Tables 1/2")
	quick := flag.Bool("quick", false, "reduced iteration counts")
	flag.Parse()
	o := bench.Options{Quick: *quick}

	runners := map[int]func() *bench.Table{
		1: bench.Table1Render,
		2: bench.Table2Render,
		3: func() *bench.Table { return bench.Fig3(o) },
		4: func() *bench.Table { return bench.Fig4(o) },
		5: func() *bench.Table { return bench.Fig5(o) },
		6: func() *bench.Table { return bench.Fig6(o) },
		7: func() *bench.Table { return bench.Fig7(o) },
		8: func() *bench.Table { return bench.Fig8(o) },
	}
	if *fig != 0 {
		r, ok := runners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "v3bench: no such figure %d (1-8)\n", *fig)
			os.Exit(2)
		}
		fmt.Println(r())
		return
	}
	for i := 1; i <= 8; i++ {
		fmt.Println(runners[i]())
	}
}
