GO ?= go

.PHONY: all build test race vet verify bench bench-netv3 clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the gate every change must pass.
verify: vet build race

# bench regenerates the netv3 fast-path numbers (BENCH_netv3.json) and
# runs the paper-figure benchmarks once.
bench: bench-netv3
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# netv3's TestMain rewrites BENCH_JSON; vvault's appends to it, so the
# order here matters.
bench-netv3:
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3' -benchtime 1s ./internal/netv3/
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3Cluster' -benchtime 1s ./internal/vvault/

clean:
	$(GO) clean ./...
