GO ?= go

# Every test invocation carries a global timeout: a reintroduced wedge
# (hung waiter, blocked probe loop, lock held across a dial) fails the
# run instead of hanging it.
TEST_TIMEOUT ?= 10m

.PHONY: all build test race vet verify chaos bench bench-netv3 bench-disk bench-mux bench-tpcc bench-resync clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

vet:
	$(GO) vet ./...

# verify is the gate every change must pass.
verify: vet build race

# chaos runs the deterministic fault-injection e2e suites (blackholed
# peers, cancel storms, partitions) under the race detector, twice.
chaos:
	$(GO) test -race -run Chaos -count=2 -timeout $(TEST_TIMEOUT) \
		./internal/netv3/ ./internal/vvault/

# bench regenerates the netv3 fast-path numbers (BENCH_netv3.json) and
# runs the paper-figure benchmarks once.
bench: bench-netv3
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Both TestMains merge rows into BENCH_JSON by name (newest wins), so
# run order does not matter and partial re-runs leave other rows alone.
bench-netv3:
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3' -benchtime 1s ./internal/netv3/
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3Cluster' -benchtime 1s ./internal/vvault/

# bench-disk re-records the batched-disk-backend ablation (the
# BenchmarkNetv3DiskQ depth sweep over the 150 µs slow store) into
# BENCH_netv3.json; the by-name merge leaves the rest of the file
# intact. One process per row keeps the rows from perturbing each other
# on small machines.
bench-disk:
	@for cfg in diskq-off diskq-d8 diskq-d32 diskq-d64 diskq-d128 diskq-d256; do \
		for wl in 16 64; do \
			BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
				-bench "BenchmarkNetv3DiskQ/$$cfg/8192x$${wl}mixed\$$" \
				-benchtime 4000x ./internal/netv3/ || exit 1; \
		done; \
	done

# bench-tpcc re-records the real-stack workload rows (uniform, Zipfian
# hot-key, sequential scan, bursty arrivals, full TPC-C mix) from the
# wall-clock engine in internal/workload over an in-process v3d server.
# Each row is one fixed measurement window, so -benchtime 1x: the engine
# is the load generator and b.N repetition adds nothing but time.
bench-tpcc:
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3TPCC' -benchtime 1x -timeout $(TEST_TIMEOUT) \
		./internal/workload/

# bench-resync re-records the recovery-path rows: cursor catch-up (a
# 1 MB outage replayed precisely from the replication log) against the
# full-rescan floor (a replica with unknown content replaying the whole
# 8 MB member). Each iteration is one outage/recovery episode, so
# -benchtime 1x.
bench-resync:
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3Resync' -benchtime 1x ./internal/vvault/

# bench-mux re-records the session-multiplexing rows: p99 at 100 vs
# 10000 logical streams on one connection, mux throughput vs a
# connection per client at equal concurrency, and the QoS-lane ablation
# (foreground p99 alone vs under background destage/resync load).
# Counted -benchtime keeps the op population identical across runs so
# the percentiles are comparable.
bench-mux:
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3MuxSessions' -benchtime 20000x ./internal/netv3/
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3MuxVsConns' -benchtime 20000x ./internal/netv3/
	BENCH_JSON=$(CURDIR)/BENCH_netv3.json $(GO) test -run '^$$' \
		-bench 'BenchmarkNetv3MuxLane' -benchtime 60000x ./internal/netv3/

clean:
	$(GO) clean ./...
