// Package v3_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper, plus ablation benches for the design
// choices called out in DESIGN.md. Each benchmark runs the corresponding
// experiment (quick settings) and reports the headline values as custom
// metrics, so `go test -bench=.` regenerates every result in one sweep.
package v3_test

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/diskmodel"
	"github.com/v3storage/v3/internal/mqcache"
	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/volume"
)

var quick = bench.Options{Quick: true}

func benchDur() bench.OLTPDurations {
	return bench.OLTPDurations{Warmup: time.Second, Measure: 1500 * time.Millisecond}
}

// ---- Tables 1 and 2 ----

func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := bench.Table1Render().String(); len(got) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := bench.Table2Render().String(); len(got) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---- Figure 3: latency of raw VI and DSA ----

func BenchmarkFig3Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vi := bench.RawVILatency(8192, 40)
		k := bench.DSALatency(core.KDSA, 8192, 40)
		w := bench.DSALatency(core.WDSA, 8192, 40)
		c := bench.DSALatency(core.CDSA, 8192, 40)
		b.ReportMetric(vi.Seconds()*1e6, "vi-8k-µs")
		b.ReportMetric(k.Seconds()*1e6, "kdsa-8k-µs")
		b.ReportMetric(w.Seconds()*1e6, "wdsa-8k-µs")
		b.ReportMetric(c.Seconds()*1e6, "cdsa-8k-µs")
	}
}

// ---- Figure 4: response-time breakdown ----

func BenchmarkFig4Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd := bench.ResponseBreakdown(core.CDSA, 8192, 40)
		b.ReportMetric(bd.CPUOverhead.Seconds()*1e6, "cpu-µs")
		b.ReportMetric(bd.NodeToNode.Seconds()*1e6, "net-µs")
		b.ReportMetric(bd.Server.Seconds()*1e6, "server-µs")
	}
}

// ---- Figure 5: response vs outstanding ----

func BenchmarkFig5Outstanding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r1 := bench.CachedLoad(core.KDSA, 8192, 1, 30*time.Millisecond)
		r16 := bench.CachedLoad(core.KDSA, 8192, 16, 30*time.Millisecond)
		b.ReportMetric(r1.MeanResponse.Seconds()*1e6, "resp-1-µs")
		b.ReportMetric(r16.MeanResponse.Seconds()*1e6, "resp-16-µs")
	}
}

// ---- Figure 6: cached throughput ----

func BenchmarkFig6Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one128k := bench.CachedLoad(core.KDSA, 128*1024, 1, 30*time.Millisecond)
		four8k := bench.CachedLoad(core.KDSA, 8192, 4, 30*time.Millisecond)
		b.ReportMetric(one128k.ThroughputMBs, "1x128K-MB/s")
		b.ReportMetric(four8k.ThroughputMBs, "4x8K-MB/s")
	}
}

// ---- Figures 7/8: V3 vs local ----

func BenchmarkFig7VsLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.VsLocal(8192, false, 1, 25)
		b.ReportMetric(r.V3Response.Seconds()*1e3, "v3-read-ms")
		b.ReportMetric(r.LocalResponse.Seconds()*1e3, "local-read-ms")
	}
}

func BenchmarkFig8VsLocalTput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.VsLocal(32*1024, false, 2, 25)
		b.ReportMetric(r.V3MBs, "v3-MB/s")
		b.ReportMetric(r.LocalMBs, "local-MB/s")
	}
}

// ---- Figures 9-14: TPC-C ----

func BenchmarkFig9AblationLarge(b *testing.B) {
	setup := bench.LargeSetup()
	for i := 0; i < b.N; i++ {
		base := bench.RunTPCCDSA(setup, core.KDSA, core.NoOpts(), benchDur())
		full := bench.RunTPCCDSA(setup, core.KDSA, core.AllOpts(), benchDur())
		b.ReportMetric(full.TpmC/base.TpmC*100, "kdsa-opt-vs-unopt-%")
	}
}

func BenchmarkFig10TpmCLarge(b *testing.B) {
	setup := bench.LargeSetup()
	for i := 0; i < b.N; i++ {
		local := bench.RunTPCCLocal(setup, 0, benchDur())
		cdsa := bench.RunTPCCDSA(setup, core.CDSA, core.AllOpts(), benchDur())
		b.ReportMetric(cdsa.TpmC/local.TpmC*100, "cdsa-vs-local-%")
	}
}

func BenchmarkFig11CPUBreakdownLarge(b *testing.B) {
	setup := bench.LargeSetup()
	for i := 0; i < b.N; i++ {
		r := bench.RunTPCCDSA(setup, core.CDSA, core.AllOpts(), benchDur())
		b.ReportMetric(r.Breakdown["SQL"]*100, "cdsa-sql-%")
		b.ReportMetric(r.Breakdown["Lock"]*100, "cdsa-lock-%")
	}
}

func BenchmarkFig12AblationMid(b *testing.B) {
	setup := bench.MidSizeSetup()
	for i := 0; i < b.N; i++ {
		base := bench.RunTPCCDSA(setup, core.CDSA, core.NoOpts(), benchDur())
		full := bench.RunTPCCDSA(setup, core.CDSA, core.AllOpts(), benchDur())
		b.ReportMetric(full.TpmC/base.TpmC*100, "cdsa-opt-vs-unopt-%")
	}
}

func BenchmarkFig13DiskSweep(b *testing.B) {
	setup := bench.MidSizeSetup()
	for i := 0; i < b.N; i++ {
		few := bench.RunTPCCLocal(setup, 30, benchDur())
		ref := bench.RunTPCCLocal(setup, 176, benchDur())
		kdsa := bench.RunTPCCDSA(setup, core.KDSA, core.AllOpts(), benchDur())
		b.ReportMetric(few.TpmC/ref.TpmC*100, "local30-vs-176-%")
		b.ReportMetric(kdsa.TpmC/ref.TpmC*100, "kdsa60-vs-local176-%")
	}
}

func BenchmarkFig14CPUBreakdownMid(b *testing.B) {
	setup := bench.MidSizeSetup()
	for i := 0; i < b.N; i++ {
		r := bench.RunTPCCDSA(setup, core.CDSA, core.AllOpts(), benchDur())
		b.ReportMetric(r.Breakdown["SQL"]*100, "cdsa-sql-%")
		b.ReportMetric(r.Breakdown["Idle"]*100, "cdsa-idle-%")
	}
}

// ---- Real TCP fast path (DESIGN.md "Real TCP fast path") ----

// BenchmarkRealTCPFastPath is the headline number for the netv3 TCP
// transport: pipelined 8 KB cached reads, window 16, over loopback with
// every hot-path optimization on (buffer pooling, sharded cache, frame
// batching). The per-optimization breakdown lives in
// internal/netv3.BenchmarkNetv3Ablation.
func BenchmarkRealTCPFastPath(b *testing.B) {
	cfg := netv3.DefaultServerConfig()
	cfg.CacheBlocks = 4096
	srv := netv3.NewServer(cfg)
	srv.AddVolume(1, netv3.NewMemStore(64<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := netv3.Dial(addr.String(), netv3.DefaultClientConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const size, window = 8192, 16
	const region = 32 << 20
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*netv3.Pending, window)
	b.ResetTimer()
	t0 := time.Now()
	for n := 0; n < b.N; n++ {
		s := n % window
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		h, err := c.ReadAsync(1, int64(n*size)%(region-size), bufs[s])
		if err != nil {
			b.Fatal(err)
		}
		handles[s] = h
	}
	for _, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	elapsed := time.Since(t0)
	ops := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(ops, "ops/s")
	b.ReportMetric(ops*size/1e6, "MB/s")
}

// ---- Ablations (DESIGN.md section 5) ----

// BenchmarkAblationDereg compares batched vs immediate deregistration on
// the micro path: NIC deregistration operations per 1000 I/Os.
func BenchmarkAblationDereg(b *testing.B) {
	run := func(batched bool) int64 {
		cfg := bench.MicroConfig(core.KDSA)
		cfg.DSA.Opts.BatchedDereg = batched
		sys := bench.Build(cfg)
		sys.E.Go("load", func(p *sim.Proc) {
			for i := 0; i < 1000; i++ {
				sys.Client.Read(p, int64(i%64)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(10 * time.Second)
		return sys.Client.DeregOps()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(true)), "batched-deregs")
		b.ReportMetric(float64(run(false)), "immediate-deregs")
	}
}

// BenchmarkAblationInterrupts compares interrupt counts per 1000 I/Os for
// cDSA polling vs interrupt completion.
func BenchmarkAblationInterrupts(b *testing.B) {
	run := func(batched bool) int64 {
		cfg := bench.MicroConfig(core.CDSA)
		cfg.DSA.Opts.BatchedInterrupts = batched
		cfg.DSA.PollInterval = 50 * time.Millisecond
		sys := bench.Build(cfg)
		sys.E.Go("load", func(p *sim.Proc) {
			for i := 0; i < 1000; i++ {
				sys.Client.Read(p, int64(i%64)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(20 * time.Second)
		return sys.Client.Interrupts()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(true)), "poll-interrupts")
		b.ReportMetric(float64(run(false)), "intr-interrupts")
	}
}

// BenchmarkAblationLocks compares mean latency with reduced vs full lock
// pair counts (Section 3.3).
func BenchmarkAblationLocks(b *testing.B) {
	run := func(reduced bool) time.Duration {
		cfg := bench.MicroConfig(core.KDSA)
		cfg.DSA.Opts.ReducedLocks = reduced
		sys := bench.Build(cfg)
		sys.E.Go("load", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				sys.Client.Read(p, int64(i%64)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(10 * time.Second)
		return sys.Client.MeanLatency()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true).Seconds()*1e6, "reduced-µs")
		b.ReportMetric(run(false).Seconds()*1e6, "full-µs")
	}
}

// BenchmarkAblationCache compares MQ vs LRU hit ratios on a second-level
// (post-buffer-pool) reference stream.
func BenchmarkAblationCache(b *testing.B) {
	run := func(mk func() mqcache.Cache) float64 {
		c := mk()
		rng := sim.NewRand(99)
		hits, total := 0, 0
		for i := 0; i < 300000; i++ {
			var k uint64
			if rng.Float64() < 0.45 {
				k = rng.Uint64() % 400 // warm, long temporal distance
			} else {
				k = 400 + rng.Uint64()%40000 // cold stream
			}
			total++
			if c.Ref(k) {
				hits++
			} else {
				c.Insert(k)
			}
		}
		return float64(hits) / float64(total)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(func() mqcache.Cache { return mqcache.NewMQ(1024, 0, 4096) })*100, "mq-hit-%")
		b.ReportMetric(run(func() mqcache.Cache { return mqcache.NewLRU(1024) })*100, "lru-hit-%")
	}
}

// BenchmarkAblationVolume compares striping vs concatenation under a
// concurrent random 8K load: striping spreads the load over all member
// disks, concatenation hotspots the first member.
func BenchmarkAblationVolume(b *testing.B) {
	run := func(stripe bool) time.Duration {
		e := sim.NewEngine()
		disks := diskmodel.NewArray(e, 8, diskmodel.SCSI10K(), sim.NewRand(3))
		var lay volume.Layout
		var err error
		memberSize := int64(1 << 30)
		if stripe {
			lay, err = volume.NewStripe(8, 64*1024, memberSize)
		} else {
			lay, err = volume.NewConcat(memberSize, memberSize, memberSize, memberSize,
				memberSize, memberSize, memberSize, memberSize)
		}
		if err != nil {
			b.Fatal(err)
		}
		var finished sim.Time
		done := 0
		const n = 64
		for s := 0; s < n; s++ {
			stream := s
			e.Go("load", func(p *sim.Proc) {
				rng := sim.NewRand(uint64(stream))
				for i := 0; i < 8; i++ {
					// Hot region: first 1% of the volume (as in a DB with a
					// hot table at the front).
					off := rng.Int63() % (lay.Size() / 100 / 8192) * 8192
					ext, err := lay.MapRead(off, 8192)
					if err != nil {
						b.Error(err)
						return
					}
					for _, x := range ext {
						ev := sim.NewEvent()
						disks.Disks[x.Disk].Submit(&diskmodel.Request{
							Offset: x.Offset, Length: x.Length, Done: ev,
						})
						ev.Wait(p)
					}
				}
				done++
				if done == n {
					finished = p.Now()
				}
			})
		}
		e.RunFor(time.Minute)
		return time.Duration(finished)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true).Seconds()*1e3, "stripe-makespan-ms")
		b.ReportMetric(run(false).Seconds()*1e3, "concat-makespan-ms")
	}
}

var _ = quick
